//! The LH\* split coordinator.
//!
//! The coordinator is the only holder of the true file state `(i, n)`.
//! Buckets report overflows; the coordinator answers by splitting the
//! bucket at the split pointer `n` — linear hashing's defining discipline:
//! the split victim is `n`, not the overflowing bucket. One split runs at a
//! time; further overflow reports queue.

use crate::drain::{fill_batch, SendQueue, Wakeup, IDLE_TICK};
use crate::hash::extent;
use crate::messages::Wire;
use sdds_net::{Endpoint, Envelope, SiteId};

/// Callback that materialises a new bucket site (registers the endpoint,
/// spawns its thread, updates the directory) and returns its address.
pub(crate) type BucketSpawner = Box<dyn FnMut(u64, u8) -> SiteId + Send>;

/// Callback that retires a bucket address from the directory (merge).
pub(crate) type BucketRetirer = Box<dyn FnMut(u64) + Send>;

pub(crate) struct CoordinatorState {
    level: u8,
    split: u64,
    /// A split or merge is in flight (they serialise on this flag).
    busy: bool,
    pending: usize,
    pending_merges: usize,
    /// Victim of the in-flight merge, retired on completion.
    merging_victim: Option<(u64, SiteId)>,
}

impl CoordinatorState {
    pub(crate) fn new() -> CoordinatorState {
        CoordinatorState {
            level: 0,
            split: 0,
            busy: false,
            pending: 0,
            pending_merges: 0,
            merging_victim: None,
        }
    }

    #[allow(dead_code)] // diagnostics + unit tests
    pub(crate) fn file_state(&self) -> (u8, u64) {
        (self.level, self.split)
    }

    /// Handles one message; may call the spawner to create bucket sites.
    pub(crate) fn handle(
        &mut self,
        msg: Wire,
        spawner: &mut BucketSpawner,
        retirer: &mut BucketRetirer,
        bucket_site: &dyn Fn(u64) -> Option<SiteId>,
    ) -> Vec<(SiteId, Wire)> {
        match msg {
            Wire::Overflow { .. } => {
                self.pending += 1;
                self.try_start_work(spawner, retirer, bucket_site)
            }
            Wire::Underflow { .. } => {
                self.pending_merges += 1;
                self.try_start_work(spawner, retirer, bucket_site)
            }
            Wire::SplitDone { addr } => {
                debug_assert_eq!(addr, self.split, "split completion out of order");
                self.split += 1;
                if self.split == 1u64 << self.level {
                    self.level += 1;
                    self.split = 0;
                }
                self.busy = false;
                self.try_start_work(spawner, retirer, bucket_site)
            }
            Wire::MergeDone { addr } => {
                debug_assert_eq!(
                    Some(addr),
                    self.merging_victim.map(|(a, _)| a),
                    "merge completion out of order"
                );
                if self.split > 0 {
                    self.split -= 1;
                } else {
                    self.level -= 1;
                    self.split = (1u64 << self.level) - 1;
                }
                self.busy = false;
                let mut out = Vec::new();
                if let Some((_, site)) = self.merging_victim.take() {
                    out.push((site, Wire::Shutdown)); // retire the site
                }
                out.extend(self.try_start_work(spawner, retirer, bucket_site));
                out
            }
            Wire::ExtentReq { req_id, client } => vec![(
                SiteId(client),
                Wire::ExtentResp {
                    req_id,
                    level: self.level,
                    split: self.split,
                    busy: self.busy || self.pending > 0 || self.pending_merges > 0,
                },
            )],
            Wire::AdoptFileState { level, split } => {
                debug_assert!(!self.busy, "restore must precede traffic");
                self.level = level;
                self.split = split;
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    /// Starts the next queued split or merge, splits first. (No pairwise
    /// cancellation: a bucket's overflow report is latched until it splits
    /// or receives a transfer, so dropping a queued split could leave an
    /// over-capacity bucket that never re-reports.)
    fn try_start_work(
        &mut self,
        spawner: &mut BucketSpawner,
        retirer: &mut BucketRetirer,
        bucket_site: &dyn Fn(u64) -> Option<SiteId>,
    ) -> Vec<(SiteId, Wire)> {
        if self.busy {
            return Vec::new();
        }
        if self.pending > 0 {
            self.pending -= 1;
            self.busy = true;
            let victim = self.split;
            let new_addr = extent(self.level, self.split); // n + 2^i
            let new_site = spawner(new_addr, self.level + 1);
            // lint: allow(panic-freedom) -- 0 <= split < extent always addresses a live bucket, and `LhCluster::open` publishes every recovered bucket's directory entry before any site thread can report an overflow
            let victim_site = bucket_site(victim).expect("split victim exists");
            return vec![(
                victim_site,
                Wire::SplitCmd {
                    addr: victim,
                    new_addr,
                    new_site: new_site.0,
                },
            )];
        }
        if self.pending_merges > 0 {
            self.pending_merges -= 1;
            let file_extent = extent(self.level, self.split);
            if file_extent <= 1 {
                return Vec::new(); // nothing to merge away
            }
            // the reverse of the most recent split
            let victim = file_extent - 1;
            let parent = if self.split > 0 {
                self.split - 1
            } else {
                (1u64 << (self.level - 1)) - 1
            };
            let (Some(victim_site), Some(parent_site)) = (bucket_site(victim), bucket_site(parent))
            else {
                return Vec::new(); // victim already retired (stale report)
            };
            self.busy = true;
            self.merging_victim = Some((victim, victim_site));
            // stop routing clients to the dissolving bucket
            retirer(victim);
            return vec![(
                victim_site,
                Wire::MergeCmd {
                    addr: victim,
                    into_addr: parent,
                    into_site: parent_site.0,
                },
            )];
        }
        Vec::new()
    }
}

/// The coordinator thread loop: batch-drained like the bucket loop (a
/// drain budget of 1 is the historical single-message dispatch). Split
/// and merge commands rejected by a full victim inbox park in the send
/// queue and retry at end-of-batch and on the idle tick — restructuring
/// cannot be lost to admission control.
pub(crate) fn run_coordinator(
    endpoint: Endpoint,
    mut spawner: BucketSpawner,
    mut retirer: BucketRetirer,
    bucket_site: Box<dyn Fn(u64) -> Option<SiteId> + Send>,
    drain_budget: usize,
) {
    let mut state = CoordinatorState::new();
    let budget = drain_budget.max(1);
    let mut batch: Vec<Envelope> = Vec::with_capacity(budget);
    let mut outbox = SendQueue::new();
    let mut health = crate::health::LoopHealth::register(sdds_obs::Registry::global());
    loop {
        let idle = outbox.has_parked().then_some(IDLE_TICK);
        match fill_batch(&endpoint, budget, idle, &mut batch) {
            Wakeup::Batch => {}
            Wakeup::Idle => {
                outbox.flush(&endpoint);
                continue;
            }
            Wakeup::Disconnected => break,
        }
        health.busy();
        let mut shutdown = false;
        for env in batch.drain(..) {
            let Some(msg) = Wire::decode(&env.payload) else {
                continue;
            };
            if matches!(msg, Wire::Shutdown) {
                shutdown = true;
                break;
            }
            // Child span under the reporting site's context (inert for
            // untraced traffic), so coordinator-ordered splits/merges
            // chain into the trace of the operation that triggered them.
            let span = sdds_obs::trace::remote_span(coord_span_name(&msg), env.ctx);
            let out_ctx = span.context();
            for (to, out) in state.handle(msg, &mut spawner, &mut retirer, bucket_site.as_ref()) {
                let payload = out.encode();
                outbox.send(&endpoint, to, &out, payload, out_ctx);
            }
        }
        outbox.flush(&endpoint);
        health.idle();
        if shutdown {
            break;
        }
    }
}

/// Static span name for a message the coordinator handles.
fn coord_span_name(msg: &Wire) -> &'static str {
    match msg {
        Wire::Overflow { .. } => "coord.overflow",
        Wire::Underflow { .. } => "coord.underflow",
        Wire::SplitDone { .. } => "coord.split_done",
        Wire::MergeDone { .. } => "coord.merge_done",
        Wire::ExtentReq { .. } => "coord.extent",
        Wire::AdoptFileState { .. } => "coord.adopt_file_state",
        _ => "coord.msg",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};

    #[allow(clippy::type_complexity)]
    fn harness() -> (
        CoordinatorState,
        BucketSpawner,
        BucketRetirer,
        Arc<Mutex<HashMap<u64, SiteId>>>,
        Box<dyn Fn(u64) -> Option<SiteId>>,
    ) {
        let sites: Arc<Mutex<HashMap<u64, SiteId>>> =
            Arc::new(Mutex::new(HashMap::from([(0u64, SiteId(100))])));
        let s2 = sites.clone();
        let spawner: BucketSpawner = Box::new(move |addr, _level| {
            let id = SiteId(100 + addr as u32);
            s2.lock().unwrap().insert(addr, id);
            id
        });
        let s4 = sites.clone();
        let retirer: BucketRetirer = Box::new(move |addr| {
            s4.lock().unwrap().remove(&addr);
        });
        let s3 = sites.clone();
        let lookup = Box::new(move |addr: u64| s3.lock().unwrap().get(&addr).copied());
        (CoordinatorState::new(), spawner, retirer, sites, lookup)
    }

    #[test]
    fn overflow_triggers_split_of_split_pointer() {
        let (mut st, mut spawner, mut retirer, _sites, lookup) = harness();
        let out = st.handle(
            Wire::Overflow {
                addr: 0,
                level: 0,
                size: 10,
            },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, SiteId(100)); // bucket 0's site
        assert_eq!(
            out[0].1,
            Wire::SplitCmd {
                addr: 0,
                new_addr: 1,
                new_site: 101
            }
        );
    }

    #[test]
    fn split_done_advances_pointer_and_level() {
        let (mut st, mut spawner, mut retirer, _sites, lookup) = harness();
        st.handle(
            Wire::Overflow {
                addr: 0,
                level: 0,
                size: 9,
            },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        // level 0: extent 1; after split of bucket 0, level = 1, split = 0
        st.handle(
            Wire::SplitDone { addr: 0 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert_eq!(st.file_state(), (1, 0));
        // next split victim is bucket 0 again, creating bucket 2
        let out = st.handle(
            Wire::Overflow {
                addr: 1,
                level: 1,
                size: 9,
            },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert_eq!(
            out[0].1,
            Wire::SplitCmd {
                addr: 0,
                new_addr: 2,
                new_site: 102
            }
        );
        st.handle(
            Wire::SplitDone { addr: 0 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert_eq!(st.file_state(), (1, 1));
    }

    #[test]
    fn one_split_at_a_time_and_queueing() {
        let (mut st, mut spawner, mut retirer, _sites, lookup) = harness();
        let first = st.handle(
            Wire::Overflow {
                addr: 0,
                level: 0,
                size: 9,
            },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert_eq!(first.len(), 1);
        // overflow during the running split queues
        let second = st.handle(
            Wire::Overflow {
                addr: 0,
                level: 0,
                size: 12,
            },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert!(second.is_empty(), "split must not start while one runs");
        // completion starts the queued split immediately
        let third = st.handle(
            Wire::SplitDone { addr: 0 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert_eq!(third.len(), 1);
        assert!(matches!(
            third[0].1,
            Wire::SplitCmd {
                addr: 0,
                new_addr: 2,
                ..
            }
        ));
    }

    #[test]
    fn underflow_triggers_merge_of_last_bucket() {
        let (mut st, mut spawner, mut retirer, sites, lookup) = harness();
        // grow the file to 3 buckets: (0,0) -> (1,0) -> (1,1)
        st.handle(
            Wire::Overflow {
                addr: 0,
                level: 0,
                size: 9,
            },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        st.handle(
            Wire::SplitDone { addr: 0 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        st.handle(
            Wire::Overflow {
                addr: 0,
                level: 1,
                size: 9,
            },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        st.handle(
            Wire::SplitDone { addr: 0 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert_eq!(st.file_state(), (1, 1));
        // underflow: merge bucket 2 back into its parent 0
        let out = st.handle(
            Wire::Underflow { addr: 1, size: 0 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].1,
            Wire::MergeCmd {
                addr: 2,
                into_addr: 0,
                into_site: 100
            }
        );
        // the victim was retired from the directory immediately
        assert!(!sites.lock().unwrap().contains_key(&2));
        // completion regresses the file state and shuts the site down
        let out = st.handle(
            Wire::MergeDone { addr: 2 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert_eq!(st.file_state(), (1, 0));
        assert!(out
            .iter()
            .any(|(to, m)| *to == SiteId(102) && matches!(m, Wire::Shutdown)));
    }

    #[test]
    fn merge_across_level_boundary() {
        let (mut st, mut spawner, mut retirer, _sites, lookup) = harness();
        // grow to exactly (1, 0): two buckets
        st.handle(
            Wire::Overflow {
                addr: 0,
                level: 0,
                size: 9,
            },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        st.handle(
            Wire::SplitDone { addr: 0 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert_eq!(st.file_state(), (1, 0));
        let out = st.handle(
            Wire::Underflow { addr: 0, size: 0 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        // merge bucket 1 into bucket 0, regressing to level 0
        assert_eq!(
            out[0].1,
            Wire::MergeCmd {
                addr: 1,
                into_addr: 0,
                into_site: 100
            }
        );
        st.handle(
            Wire::MergeDone { addr: 1 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert_eq!(st.file_state(), (0, 0));
    }

    #[test]
    fn single_bucket_file_never_merges() {
        let (mut st, mut spawner, mut retirer, _sites, lookup) = harness();
        let out = st.handle(
            Wire::Underflow { addr: 0, size: 0 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert!(out.is_empty());
        assert_eq!(st.file_state(), (0, 0));
    }

    #[test]
    fn opposing_pressure_runs_sequentially() {
        // Queued splits and merges both execute (no pairwise cancellation:
        // an overflow report is latched at the bucket, so dropping its
        // split could starve an over-capacity bucket forever).
        let (mut st, mut spawner, mut retirer, _sites, lookup) = harness();
        // grow to 2 buckets first so a merge would be possible
        st.handle(
            Wire::Overflow {
                addr: 0,
                level: 0,
                size: 9,
            },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        st.handle(
            Wire::SplitDone { addr: 0 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        // start a split, then queue an underflow during it
        st.handle(
            Wire::Overflow {
                addr: 1,
                level: 1,
                size: 9,
            },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        let during = st.handle(
            Wire::Underflow { addr: 0, size: 0 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert!(during.is_empty(), "busy: nothing starts");
        // queue one more overflow: it must run BEFORE the merge
        st.handle(
            Wire::Overflow {
                addr: 1,
                level: 1,
                size: 9,
            },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        let after = st.handle(
            Wire::SplitDone { addr: 0 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert!(
            after
                .iter()
                .any(|(_, m)| matches!(m, Wire::SplitCmd { .. })),
            "queued split starts next: {after:?}"
        );
        // and once that split finishes, the queued merge runs
        let finally = st.handle(
            Wire::SplitDone { addr: 1 },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert!(
            finally
                .iter()
                .any(|(_, m)| matches!(m, Wire::MergeCmd { .. })),
            "queued merge runs after: {finally:?}"
        );
    }

    #[test]
    fn extent_request_reports_file_state() {
        let (mut st, mut spawner, mut retirer, _sites, lookup) = harness();
        let out = st.handle(
            Wire::ExtentReq {
                req_id: 5,
                client: 9,
            },
            &mut spawner,
            &mut retirer,
            lookup.as_ref(),
        );
        assert_eq!(
            out,
            vec![(
                SiteId(9),
                Wire::ExtentResp {
                    req_id: 5,
                    level: 0,
                    split: 0,
                    busy: false
                }
            )]
        );
    }
}
