//! Event-loop health self-reporting.
//!
//! Every site event loop (bucket, coordinator, parity) owns a
//! [`LoopHealth`] and brackets each batch dispatch with
//! [`busy`](LoopHealth::busy) / [`idle`](LoopHealth::idle). Two signals
//! come out:
//!
//! * `lh.loop_stall_seconds` — histogram of how long each dispatch kept
//!   the loop away from its inbox (its per-batch "drain stall"). A loop
//!   wedged on a slow storage flush or a huge transfer shows up as a fat
//!   tail here.
//! * `lh.loop_last_tick_age` — gauge (milliseconds) of the *oldest
//!   currently busy* dispatch across this process's loops, refreshed by
//!   the serve host's observability tick ([`max_busy_age`]). Idle loops
//!   report 0: blocking on an empty inbox is healthy, only time spent
//!   *handling* counts as age. A wedged rank is therefore visible from a
//!   cluster scrape before any client times out on it.
//!
//! Registration is process-global so the host watchdog can sample loops
//! it did not create; a loop deregisters on exit (`Drop`), so shut-down
//! sites never alarm.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Process epoch for busy timestamps (nanoseconds since first use).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Busy-since cells of every live loop. 0 = idle; otherwise
/// `now_nanos() + 1` at the moment the loop started its current dispatch
/// (+1 so a dispatch starting at the epoch itself is not read as idle).
fn cells() -> &'static Mutex<Vec<Arc<AtomicU64>>> {
    static CELLS: OnceLock<Mutex<Vec<Arc<AtomicU64>>>> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(Vec::new()))
}

/// One event loop's health reporter. Created at loop start, dropped on
/// loop exit (deregistering the loop from the watchdog).
pub(crate) struct LoopHealth {
    stall: sdds_obs::Histogram,
    cell: Arc<AtomicU64>,
    busy_since: Option<Instant>,
}

impl LoopHealth {
    /// Registers a loop with the process watchdog. The stall histogram
    /// lands in `obs` (a bucket's per-site registry or the global one),
    /// propagating to the global aggregate either way.
    pub(crate) fn register(obs: &sdds_obs::Registry) -> LoopHealth {
        let cell = Arc::new(AtomicU64::new(0));
        cells().lock().push(cell.clone());
        LoopHealth {
            stall: obs.histogram("lh.loop_stall_seconds"),
            cell,
            busy_since: None,
        }
    }

    /// Marks the start of a batch dispatch.
    pub(crate) fn busy(&mut self) {
        self.busy_since = Some(Instant::now());
        // ordering: Relaxed — the cell is an independent timestamp read
        // by the watchdog; no memory is published through it.
        self.cell.store(now_nanos() + 1, Ordering::Relaxed);
    }

    /// Marks the end of a batch dispatch, recording its duration as the
    /// loop's drain stall.
    pub(crate) fn idle(&mut self) {
        if let Some(since) = self.busy_since.take() {
            self.stall.observe(since.elapsed().as_secs_f64());
        }
        // ordering: Relaxed — see busy().
        self.cell.store(0, Ordering::Relaxed);
    }
}

impl Drop for LoopHealth {
    fn drop(&mut self) {
        let mut cells = cells().lock();
        if let Some(pos) = cells.iter().position(|c| Arc::ptr_eq(c, &self.cell)) {
            cells.swap_remove(pos);
        }
    }
}

/// Age of the oldest in-flight batch dispatch across this process's
/// loops (zero when every loop is idle or blocked on its inbox). The
/// serve host's observability tick publishes this as the
/// `lh.loop_last_tick_age` gauge, in milliseconds.
pub(crate) fn max_busy_age() -> Duration {
    let now = now_nanos();
    let mut max = 0u64;
    for cell in cells().lock().iter() {
        // ordering: Relaxed — see LoopHealth::busy.
        let stamp = cell.load(Ordering::Relaxed);
        if stamp != 0 {
            max = max.max(now.saturating_sub(stamp - 1));
        }
    }
    Duration::from_nanos(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_loops_age_and_idle_loops_do_not() {
        let obs = sdds_obs::Registry::new("health-test");
        let mut a = LoopHealth::register(&obs);
        let mut b = LoopHealth::register(&obs);
        // Nothing busy (other tests' loops may be running concurrently,
        // so only assert on our own transitions below).
        a.busy();
        std::thread::sleep(Duration::from_millis(5));
        assert!(
            max_busy_age() >= Duration::from_millis(4),
            "a busy dispatch ages"
        );
        a.idle();
        b.busy();
        b.idle();
        let snap = obs.snapshot();
        let stalls = &snap.histograms["lh.loop_stall_seconds"];
        assert_eq!(stalls.count, 2, "each dispatch records one stall sample");
        assert!(
            stalls.sum_seconds >= 0.004,
            "a's 5ms dispatch is in the sum"
        );
        // Dropping deregisters: a permanently-busy loop that exits must
        // not alarm forever.
        a.busy();
        drop(a);
        drop(b);
    }
}
