//! Client-side cluster observability: the [`ClusterObs`] collector
//! scrapes every rank of a served TCP cluster over the host control
//! channel ([`HostMsg::ObsPull`](crate::serve::HostMsg) /
//! `ObsReport`), merges the per-rank metrics snapshots into one
//! cluster-wide aggregate, and stitches shipped spans into connected
//! cross-process trace trees.
//!
//! Merge semantics mirror the in-process parent/child registries:
//! counters and histograms sum, integer gauges sum (each rank's global
//! registry already holds the sum of its sites, so the cluster
//! aggregate extends parent = Σ children one level up), and float
//! gauges are carried per-rank only — a chi-square does not sum.

use crate::client::LhError;
use crate::cluster::send_control;
use crate::serve::HostMsg;
use sdds_net::{Endpoint, NetError, SiteRegistry};
use sdds_obs::trace::{stitch, ParsedSpan, RankedSpan, TraceTree};
use sdds_obs::MetricsSnapshot;
use std::time::{Duration, Instant};

/// What a scrape should pull from each rank.
#[derive(Debug, Clone)]
pub struct ScrapeOptions {
    /// Pull metrics (rank aggregate + per-site snapshots).
    pub metrics: bool,
    /// Drain and pull flight-recorder spans.
    pub spans: bool,
    /// Pull the rank's timestamped snapshot-ring history.
    pub history: bool,
    /// Overall deadline for all ranks to report.
    pub timeout: Duration,
}

impl Default for ScrapeOptions {
    fn default() -> ScrapeOptions {
        ScrapeOptions {
            metrics: true,
            spans: false,
            history: false,
            timeout: Duration::from_secs(10),
        }
    }
}

/// One rank's scrape result.
#[derive(Debug, Clone)]
pub struct RankScrape {
    /// The reporting rank.
    pub rank: usize,
    /// The rank's process-global snapshot.
    pub metrics: Option<MetricsSnapshot>,
    /// The rank's per-site (per-bucket) snapshots.
    pub sites: Vec<MetricsSnapshot>,
    /// Spans drained from the rank's flight recorder.
    pub spans: Vec<ParsedSpan>,
    /// Snapshot-ring history: (unix millis, snapshot), oldest first.
    pub history: Vec<(u64, MetricsSnapshot)>,
}

/// A whole-cluster scrape: the merged aggregate plus per-rank
/// breakdowns.
#[derive(Debug, Clone)]
pub struct ClusterScrape {
    /// Counters/gauges/histograms summed across every reporting rank
    /// (label `"cluster"`); float gauges live in the per-rank snapshots.
    pub aggregate: MetricsSnapshot,
    /// Per-rank results, ascending by rank.
    pub ranks: Vec<RankScrape>,
    /// Ranks that did not report within the timeout.
    pub missing: Vec<usize>,
}

impl ClusterScrape {
    /// Stitches the scraped spans — plus any spans drained locally in
    /// the client process (tagged rank -1) — into cross-process trace
    /// trees keyed by `trace_id`.
    pub fn traces(&self, local: Vec<ParsedSpan>) -> Vec<TraceTree> {
        let mut all: Vec<RankedSpan> = local
            .into_iter()
            .map(|span| RankedSpan { rank: -1, span })
            .collect();
        for r in &self.ranks {
            all.extend(r.spans.iter().cloned().map(|span| RankedSpan {
                rank: r.rank as i64,
                span,
            }));
        }
        stitch(all)
    }
}

/// Scrapes a served cluster's observability plane. Obtain one via
/// [`TcpCluster::obs`](crate::TcpCluster::obs); it holds its own dynamic
/// endpoint, so scrapes never contend with the hub's clients.
pub struct ClusterObs {
    control: Endpoint,
    num_ranks: usize,
}

impl ClusterObs {
    pub(crate) fn new(control: Endpoint, num_ranks: usize) -> ClusterObs {
        ClusterObs { control, num_ranks }
    }

    /// Pulls metrics/spans/history from every rank, merging the metrics
    /// into one aggregate. Ranks that fail to report within the timeout
    /// are listed in [`ClusterScrape::missing`] (and counted in
    /// `obs.scrape_failures`) rather than failing the whole scrape —
    /// partial visibility into a degraded cluster is the point.
    pub fn scrape(&self, opts: &ScrapeOptions) -> Result<ClusterScrape, LhError> {
        let _timer = sdds_obs::histogram("obs.scrape_seconds").start_timer();
        for rank in 0..self.num_ranks {
            let msg = HostMsg::ObsPull {
                req_id: rank as u64,
                reply_to: self.control.id().0,
                metrics: opts.metrics,
                spans: opts.spans,
                history: opts.history,
            };
            send_control(&self.control, SiteRegistry::host_id(rank), msg.encode())
                .map_err(LhError::Net)?;
        }
        let deadline = Instant::now() + opts.timeout;
        let mut ranks: Vec<RankScrape> = Vec::new();
        let mut seen = vec![false; self.num_ranks];
        let mut outstanding = self.num_ranks;
        while outstanding > 0 {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            let env = match self.control.recv_timeout(remaining) {
                Ok(env) => env,
                Err(NetError::Timeout) => break,
                Err(e) => return Err(LhError::Net(e)),
            };
            let Some(HostMsg::ObsReport {
                rank,
                metrics,
                sites,
                spans,
                history,
                ..
            }) = HostMsg::decode(&env.payload)
            else {
                continue;
            };
            let rank = rank as usize;
            if rank >= self.num_ranks || seen[rank] {
                continue;
            }
            seen[rank] = true;
            outstanding -= 1;
            let (parsed, skipped) = sdds_obs::trace::parse_jsonl(&spans);
            if skipped > 0 {
                sdds_obs::counter("obs.scrape_span_decode_failures").add(skipped as u64);
            }
            ranks.push(RankScrape {
                rank,
                metrics: metrics.and_then(|m| MetricsSnapshot::from_json(&m)),
                sites: sites
                    .iter()
                    .filter_map(|s| MetricsSnapshot::from_json(s))
                    .collect(),
                spans: parsed,
                history: history
                    .into_iter()
                    .filter_map(|(t, s)| MetricsSnapshot::from_json(&s).map(|m| (t, m)))
                    .collect(),
            });
        }
        let missing: Vec<usize> = seen
            .iter()
            .enumerate()
            .filter(|&(_, &reported)| !reported)
            .map(|(rank, _)| rank)
            .collect();
        if !missing.is_empty() {
            sdds_obs::counter("obs.scrape_failures").add(missing.len() as u64);
        }
        ranks.sort_by_key(|r| r.rank);
        let parts: Vec<MetricsSnapshot> = ranks.iter().filter_map(|r| r.metrics.clone()).collect();
        Ok(ClusterScrape {
            aggregate: MetricsSnapshot::merge("cluster", &parts),
            ranks,
            missing,
        })
    }
}
