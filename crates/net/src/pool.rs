//! Reusable send-buffer pool.
//!
//! Message encoding used to build a fresh `Vec<u8>` per send and then copy
//! it again into the `Arc<[u8]>` backing `Bytes`. [`PooledBuf`] removes
//! both costs on the steady-state path: `take()` hands out a recycled
//! `Vec<u8>`, the encoder streams into it via `io::Write`, and
//! [`PooledBuf::into_bytes`] wraps the buffer as `Bytes` *without copying*
//! (`Bytes::from_owner`). When the last clone of the `Bytes` is dropped,
//! the buffer returns to the pool.
//!
//! The pool is global and bounded: at most [`MAX_POOLED`] buffers are
//! retained, and buffers that grew beyond [`MAX_RETAIN_CAPACITY`] are
//! dropped instead of pooled so one huge scan response cannot pin memory
//! forever. `net.buf_pool_hits` / `net.buf_pool_misses` count recycled vs
//! freshly allocated buffers.

use parking_lot::Mutex;

/// Maximum number of idle buffers the pool retains.
const MAX_POOLED: usize = 64;

/// Buffers larger than this are not returned to the pool.
const MAX_RETAIN_CAPACITY: usize = 256 * 1024;

static POOL: Mutex<Vec<Vec<u8>>> = Mutex::new(Vec::new());

/// A pooled, growable byte buffer.
///
/// Obtained with [`PooledBuf::take`]; filled through `io::Write` (or
/// [`PooledBuf::as_mut_vec`]); converted into zero-copy [`bytes::Bytes`]
/// with [`PooledBuf::into_bytes`]. Dropping it (directly or via the last
/// `Bytes` clone) returns the buffer to the pool.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Option<Vec<u8>>,
}

impl PooledBuf {
    /// Takes a cleared buffer from the pool, or allocates a fresh one.
    pub fn take() -> PooledBuf {
        let recycled = POOL.lock().pop();
        match recycled {
            Some(mut buf) => {
                buf.clear();
                sdds_obs::counter("net.buf_pool_hits").inc();
                PooledBuf { buf: Some(buf) }
            }
            None => {
                sdds_obs::counter("net.buf_pool_misses").inc();
                PooledBuf {
                    buf: Some(Vec::new()),
                }
            }
        }
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        self.buf.as_deref().unwrap_or(&[])
    }

    /// Mutable access to the underlying vector (for non-`io::Write`
    /// encoders).
    pub fn as_mut_vec(&mut self) -> &mut Vec<u8> {
        self.buf.get_or_insert_with(Vec::new)
    }

    /// Wraps the buffer as `Bytes` without copying. The buffer returns to
    /// the pool when the last clone of the returned `Bytes` is dropped.
    pub fn into_bytes(self) -> bytes::Bytes {
        bytes::Bytes::from_owner(self)
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::io::Write for PooledBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.as_mut_vec().extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            if buf.capacity() <= MAX_RETAIN_CAPACITY {
                let mut pool = POOL.lock();
                if pool.len() < MAX_POOLED {
                    pool.push(buf);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn roundtrip_through_bytes_returns_buffer_to_pool() {
        // Warm the pool so this test is deterministic regardless of what
        // ran before it.
        drop(PooledBuf::take());

        let hits = sdds_obs::counter("net.buf_pool_hits");
        let before = hits.get();
        let mut b = PooledBuf::take();
        b.write_all(b"hello pool").unwrap();
        assert_eq!(b.as_slice(), b"hello pool");
        let bytes = b.into_bytes();
        let clone = bytes.clone();
        assert_eq!(&clone[..], b"hello pool");
        drop(bytes);
        drop(clone);
        // The buffer is back: the next take is a hit.
        let again = PooledBuf::take();
        assert!(hits.get() > before);
        assert!(again.as_slice().is_empty());
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let mut b = PooledBuf::take();
        b.as_mut_vec().reserve(MAX_RETAIN_CAPACITY + 1);
        let cap = b.as_mut_vec().capacity();
        assert!(cap > MAX_RETAIN_CAPACITY);
        drop(b);
        // Whatever we take next cannot be that oversized buffer.
        let next = PooledBuf::take();
        assert!(next.buf.as_ref().map(Vec::capacity).unwrap_or(0) < cap);
    }
}
