//! Site registry and the TCP transport's site-id space.
//!
//! A registry file lists one listen address per server rank, one per
//! line (`#` starts a comment):
//!
//! ```text
//! # 3-process cluster on loopback
//! 127.0.0.1:7401
//! 127.0.0.1:7402
//! 127.0.0.1:7403
//! ```
//!
//! Site ids are partitioned so any process can route a message from the
//! id alone, without a directory service:
//!
//! * `0 .. DYN_BASE` — LH* bucket addresses. A bucket's site id *is* its
//!   bucket address, and bucket `a` lives on rank `a % servers`.
//! * `DYN_BASE .. COORD_ID` — dynamically allocated client endpoints.
//!   Clients never listen; servers learn the connection that reaches a
//!   client id from its hello frame and reply on it.
//! * `COORD_ID` — the coordinator, always on rank 0.
//! * `HOST_BASE + r` — rank `r`'s host-control endpoint (bucket spawn,
//!   connection-drop fault injection, shutdown).

use crate::network::SiteId;

/// First dynamically allocated (client) site id.
pub const DYN_BASE: u32 = 0xFE00_0000;

/// The coordinator's fixed site id (rank 0).
pub const COORD_ID: u32 = 0xFF00_0000;

/// Base of the per-rank host-control ids (`HOST_BASE + rank`).
pub const HOST_BASE: u32 = 0xFF10_0000;

/// Listen addresses for a cluster's server ranks, in rank order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRegistry {
    servers: Vec<String>,
}

impl SiteRegistry {
    /// Builds a registry from explicit addresses.
    pub fn from_addrs(servers: Vec<String>) -> Result<SiteRegistry, String> {
        if servers.is_empty() {
            return Err("registry lists no servers".to_string());
        }
        Ok(SiteRegistry { servers })
    }

    /// Parses registry file text: one `host:port` per line, blank lines
    /// and `#` comments ignored.
    pub fn parse(text: &str) -> Result<SiteRegistry, String> {
        let mut servers = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if !line.contains(':') {
                return Err(format!(
                    "registry line {}: {line:?} is not host:port",
                    lineno + 1
                ));
            }
            servers.push(line.to_string());
        }
        SiteRegistry::from_addrs(servers)
    }

    /// Loads and parses a registry file.
    pub fn load(path: &std::path::Path) -> Result<SiteRegistry, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read registry {}: {e}", path.display()))?;
        SiteRegistry::parse(&text)
    }

    /// Number of server ranks.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Listen address of `rank`.
    pub fn addr(&self, rank: usize) -> Option<&str> {
        self.servers.get(rank).map(String::as_str)
    }

    /// Which server rank hosts `id`, or `None` for dynamic (client) ids,
    /// which are routed by learned connection instead.
    pub fn owner_rank(&self, id: SiteId) -> Option<usize> {
        let n = self.servers.len() as u32;
        match id.0 {
            COORD_ID => Some(0),
            x if (HOST_BASE..HOST_BASE.saturating_add(n)).contains(&x) => {
                Some((x - HOST_BASE) as usize)
            }
            x if x < DYN_BASE => Some((x % n) as usize),
            _ => None,
        }
    }

    /// Whether `id` is a well-known (statically routable) id.
    pub fn is_static(id: SiteId) -> bool {
        id.0 < DYN_BASE || id.0 == COORD_ID || id.0 >= HOST_BASE
    }

    /// The host-control site id of `rank`.
    pub fn host_id(rank: usize) -> SiteId {
        SiteId(HOST_BASE + rank as u32)
    }

    /// The bucket site id of LH* bucket address `addr` (TCP id space).
    pub fn bucket_id(addr: u64) -> SiteId {
        SiteId((addr % DYN_BASE as u64) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_lines_comments_and_blanks() {
        let r = SiteRegistry::parse(
            "# cluster\n127.0.0.1:7001\n\n127.0.0.1:7002  # rank 1\n127.0.0.1:7003\n",
        )
        .unwrap();
        assert_eq!(r.num_servers(), 3);
        assert_eq!(r.addr(1), Some("127.0.0.1:7002"));
        assert_eq!(r.addr(3), None);
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert!(SiteRegistry::parse("# nothing\n").is_err());
        assert!(SiteRegistry::parse("localhost\n").is_err());
    }

    #[test]
    fn id_space_partition() {
        let r = SiteRegistry::parse("a:1\nb:2\nc:3\n").unwrap();
        assert_eq!(r.owner_rank(SiteId(0)), Some(0));
        assert_eq!(r.owner_rank(SiteId(4)), Some(1));
        assert_eq!(r.owner_rank(SiteId(COORD_ID)), Some(0));
        assert_eq!(r.owner_rank(SiteRegistry::host_id(2)), Some(2));
        assert_eq!(r.owner_rank(SiteId(DYN_BASE + 7)), None);
        assert!(SiteRegistry::is_static(SiteId(12)));
        assert!(!SiteRegistry::is_static(SiteId(DYN_BASE + 7)));
        assert!(SiteRegistry::is_static(SiteId(COORD_ID)));
    }
}
