//! Traffic accounting.

use crate::network::SiteId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Message and byte counters, total and per site. Thread-safe; counters
/// use relaxed atomics (totals only, no inter-counter invariants).
#[derive(Debug, Default)]
pub struct NetStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    dropped: AtomicU64,
    rejected: AtomicU64,
    per_site: Mutex<HashMap<SiteId, SiteCounters>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct SiteCounters {
    sent_msgs: u64,
    sent_bytes: u64,
    recv_msgs: u64,
    recv_bytes: u64,
}

impl NetStats {
    /// Creates zeroed counters.
    pub fn new() -> NetStats {
        NetStats::default()
    }

    pub(crate) fn record(&self, from: SiteId, to: SiteId, len: usize) {
        // ordering: Relaxed — monotonic totals with no inter-counter
        // invariant; a receiver that must observe the count after a
        // delivery synchronizes on the channel enqueue, not on these adds
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(len as u64, Ordering::Relaxed); // ordering: see above
        let mut map = self.per_site.lock();
        let s = map.entry(from).or_default();
        s.sent_msgs += 1;
        s.sent_bytes += len as u64;
        let r = map.entry(to).or_default();
        r.recv_msgs += 1;
        r.recv_bytes += len as u64;
    }

    /// Rolls back a [`record`](Self::record) for a send that failed after
    /// being provisionally counted (the counters must not include messages
    /// that were never enqueued).
    pub(crate) fn unrecord(&self, from: SiteId, to: SiteId, len: usize) {
        // ordering: Relaxed — rollback of the provisional adds in record();
        // same no-inter-counter-invariant argument
        self.messages.fetch_sub(1, Ordering::Relaxed);
        self.bytes.fetch_sub(len as u64, Ordering::Relaxed); // ordering: see above
        let mut map = self.per_site.lock();
        if let Some(s) = map.get_mut(&from) {
            s.sent_msgs = s.sent_msgs.saturating_sub(1);
            s.sent_bytes = s.sent_bytes.saturating_sub(len as u64);
        }
        if let Some(r) = map.get_mut(&to) {
            r.recv_msgs = r.recv_msgs.saturating_sub(1);
            r.recv_bytes = r.recv_bytes.saturating_sub(len as u64);
        }
    }

    pub(crate) fn record_dropped(&self) {
        // ordering: Relaxed — independent monotonic counter, read only by
        // snapshots
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        // ordering: Relaxed — independent monotonic counter, read only by
        // snapshots; the sender learns of the rejection through the
        // Err return, not through this counter
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Total messages delivered.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed) // ordering: snapshot read, staleness fine
    }

    /// Messages lost to fault injection.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed) // ordering: snapshot read, staleness fine
    }

    /// Messages refused at the sender because the destination inbox was
    /// at capacity (admission control; see `NetConfig::inbox_capacity`).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed) // ordering: snapshot read, staleness fine
    }

    /// Total payload bytes delivered.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed) // ordering: snapshot read, staleness fine
    }

    /// Messages sent by a site.
    pub fn messages_from(&self, site: SiteId) -> u64 {
        self.per_site.lock().get(&site).map_or(0, |c| c.sent_msgs)
    }

    /// Messages received by a site.
    pub fn messages_to(&self, site: SiteId) -> u64 {
        self.per_site.lock().get(&site).map_or(0, |c| c.recv_msgs)
    }

    /// Payload bytes sent by a site.
    pub fn bytes_from(&self, site: SiteId) -> u64 {
        self.per_site.lock().get(&site).map_or(0, |c| c.sent_bytes)
    }

    /// Payload bytes received by a site.
    pub fn bytes_to(&self, site: SiteId) -> u64 {
        self.per_site.lock().get(&site).map_or(0, |c| c.recv_bytes)
    }

    /// Resets all counters — lets benches measure per-phase traffic.
    pub fn reset(&self) {
        // ordering: Relaxed — benches call this between phases with no
        // concurrent traffic; racing writers would only skew statistics
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed); // ordering: see above
        self.dropped.store(0, Ordering::Relaxed); // ordering: see above
        self.rejected.store(0, Ordering::Relaxed); // ordering: see above
        self.per_site.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let stats = NetStats::new();
        stats.record(SiteId(0), SiteId(1), 10);
        stats.record(SiteId(0), SiteId(2), 5);
        stats.record(SiteId(1), SiteId(0), 1);
        assert_eq!(stats.messages(), 3);
        assert_eq!(stats.bytes(), 16);
        assert_eq!(stats.messages_from(SiteId(0)), 2);
        assert_eq!(stats.bytes_from(SiteId(0)), 15);
        assert_eq!(stats.messages_to(SiteId(0)), 1);
        assert_eq!(stats.bytes_to(SiteId(2)), 5);
    }

    #[test]
    fn unknown_site_reads_zero() {
        let stats = NetStats::new();
        assert_eq!(stats.messages_from(SiteId(9)), 0);
        assert_eq!(stats.bytes_to(SiteId(9)), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let stats = NetStats::new();
        stats.record(SiteId(0), SiteId(1), 100);
        stats.reset();
        assert_eq!(stats.messages(), 0);
        assert_eq!(stats.bytes(), 0);
        assert_eq!(stats.messages_from(SiteId(0)), 0);
    }

    #[test]
    fn self_send_counts_both_directions() {
        let stats = NetStats::new();
        stats.record(SiteId(3), SiteId(3), 7);
        assert_eq!(stats.messages_from(SiteId(3)), 1);
        assert_eq!(stats.messages_to(SiteId(3)), 1);
    }
}
