//! Wire framing for the TCP transport.
//!
//! Every message on a TCP connection is one *frame*:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [kind: u8] [body: len-1 bytes]
//! ```
//!
//! `len` counts the kind byte plus the body (so a frame occupies `8 + len`
//! bytes on the wire) and `crc` is the CRC-32 (IEEE polynomial, the same
//! variant used by zlib) of the kind byte followed by the body. A frame
//! whose CRC does not match, whose `len` is zero, or whose `len` exceeds
//! [`MAX_FRAME_LEN`] is rejected and the connection that produced it is
//! dropped: framing is only trusted as a unit, never resynchronised
//! mid-stream.
//!
//! Three frame kinds exist:
//!
//! * kind `0` — an [`Envelope`]: `from: u32 LE`, `to: u32 LE`, `flags: u8`
//!   (bit 0 = trace context present), then if the flag is set
//!   `trace_id: u64 LE` + `parent_span_id: u64 LE`, then the payload bytes.
//! * kind `1` — a NACK: `reason: u8` (0 = overloaded, 1 = unroutable),
//!   `from: u32 LE`, `to: u32 LE` echoing the rejected envelope's header.
//!   The receiver of an envelope it cannot enqueue sends this back so the
//!   sender can surface `NetError::Overloaded` / `Disconnected` and the
//!   existing `RetryPolicy` backoff works identically across transports.
//! * kind `2` — a hello: `id: u32 LE`. Sent by a connecting process for
//!   each dynamically allocated (client) site id it hosts, so the serving
//!   side learns which connection routes replies to that id. Re-sent on
//!   every reconnect.
//!
//! The decoder is incremental: feed it arbitrary byte chunks (torn reads
//! are fine) and pull complete frames out. It never pre-allocates more
//! than the declared frame length, and declared lengths are capped at
//! [`MAX_FRAME_LEN`] *before* any allocation happens, so a hostile or
//! corrupt length prefix cannot trigger an over-allocation.

use crate::network::{Envelope, SiteId};
use bytes::Bytes;
use sdds_obs::trace::TraceContext;

/// Upper bound on `len` (kind byte + body) for a single frame: 16 MiB.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Fixed prefix: 4-byte length + 4-byte CRC.
pub const HEADER_LEN: usize = 8;

const KIND_ENVELOPE: u8 = 0;
const KIND_NACK: u8 = 1;
const KIND_HELLO: u8 = 2;

const FLAG_CTX: u8 = 0b0000_0001;

/// Why a receiver refused an envelope (carried in a NACK frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackReason {
    /// The destination inbox stayed full past the receiver's grace window.
    Overloaded,
    /// The destination id is not (or no longer) hosted by the receiver.
    Unroutable,
}

/// One decoded frame.
#[derive(Debug)]
pub enum Frame {
    /// A routed message.
    Envelope(Envelope),
    /// A refusal echoing the rejected envelope's `from`/`to`.
    Nack {
        /// Why the envelope was refused.
        reason: NackReason,
        /// The rejected envelope's sender.
        from: SiteId,
        /// The rejected envelope's destination.
        to: SiteId,
    },
    /// A dynamic-id announcement from a connecting process.
    Hello {
        /// The dynamically allocated site id the peer hosts.
        id: SiteId,
    },
}

/// Why a frame (or stream position) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Declared length is zero or exceeds [`MAX_FRAME_LEN`].
    BadLength(u64),
    /// CRC over kind+body did not match the header.
    BadCrc,
    /// Unknown frame kind byte.
    BadKind(u8),
    /// The body was shorter than its fixed fields require.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadLength(n) => write!(f, "frame length {n} out of range"),
            FrameError::BadCrc => write!(f, "frame CRC mismatch"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Truncated => write!(f, "frame body truncated"),
        }
    }
}

impl std::error::Error for FrameError {}

// CRC-32 (IEEE 802.3 polynomial, reflected: 0xEDB88320), table-driven.
// The table is computed at compile time; `crc32(b"123456789")` must equal
// the standard check value 0xCBF4_3926.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Finishes a frame started at `start` in `out`: fills in the length and
/// CRC header bytes that were reserved by the caller.
#[allow(clippy::ptr_arg)] // writes length/CRC in place *and* measures the tail the caller appended
fn seal(out: &mut Vec<u8>, start: usize) {
    let len = (out.len() - start - HEADER_LEN) as u32;
    let crc = crc32(&out[start + HEADER_LEN..]);
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Appends an encoded envelope frame to `out`.
pub fn encode_envelope(env: &Envelope, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0u8; HEADER_LEN]);
    out.push(KIND_ENVELOPE);
    put_u32(out, env.from.0);
    put_u32(out, env.to.0);
    match env.ctx {
        Some(ctx) => {
            out.push(FLAG_CTX);
            put_u64(out, ctx.trace_id);
            put_u64(out, ctx.parent_span_id);
        }
        None => out.push(0),
    }
    out.extend_from_slice(&env.payload);
    seal(out, start);
}

/// Appends an encoded NACK frame to `out`.
pub fn encode_nack(reason: NackReason, from: SiteId, to: SiteId, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0u8; HEADER_LEN]);
    out.push(KIND_NACK);
    out.push(match reason {
        NackReason::Overloaded => 0,
        NackReason::Unroutable => 1,
    });
    put_u32(out, from.0);
    put_u32(out, to.0);
    seal(out, start);
}

/// Appends an encoded hello frame to `out`.
pub fn encode_hello(id: SiteId, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0u8; HEADER_LEN]);
    out.push(KIND_HELLO);
    put_u32(out, id.0);
    seal(out, start);
}

struct BodyReader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn u8(&mut self) -> Result<u8, FrameError> {
        let b = *self.body.get(self.pos).ok_or(FrameError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let s = self
            .body
            .get(self.pos..self.pos + 4)
            .ok_or(FrameError::Truncated)?;
        self.pos += 4;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let s = self
            .body
            .get(self.pos..self.pos + 8)
            .ok_or(FrameError::Truncated)?;
        self.pos += 8;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn rest(&mut self) -> &'a [u8] {
        let r = self.body.get(self.pos..).unwrap_or(&[]);
        self.pos = self.body.len();
        r
    }
}

fn decode_body(kind: u8, body: &[u8]) -> Result<Frame, FrameError> {
    let mut r = BodyReader { body, pos: 0 };
    match kind {
        KIND_ENVELOPE => {
            let from = SiteId(r.u32()?);
            let to = SiteId(r.u32()?);
            let flags = r.u8()?;
            let ctx = if flags & FLAG_CTX != 0 {
                Some(TraceContext {
                    trace_id: r.u64()?,
                    parent_span_id: r.u64()?,
                })
            } else {
                None
            };
            let payload = Bytes::copy_from_slice(r.rest());
            Ok(Frame::Envelope(Envelope {
                from,
                to,
                payload,
                ctx,
            }))
        }
        KIND_NACK => {
            let reason = match r.u8()? {
                0 => NackReason::Overloaded,
                1 => NackReason::Unroutable,
                other => return Err(FrameError::BadKind(other)),
            };
            let from = SiteId(r.u32()?);
            let to = SiteId(r.u32()?);
            Ok(Frame::Nack { reason, from, to })
        }
        KIND_HELLO => Ok(Frame::Hello {
            id: SiteId(r.u32()?),
        }),
        other => Err(FrameError::BadKind(other)),
    }
}

/// Incremental frame decoder.
///
/// Feed raw bytes with [`FrameDecoder::extend`]; pull complete frames with
/// [`FrameDecoder::next_frame`]. Internally buffers at most one partial
/// frame plus whatever the caller has fed ahead; buffered bytes for a
/// frame are bounded by `HEADER_LEN + MAX_FRAME_LEN` because oversized
/// length prefixes are rejected before the body is awaited.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Feeds `data` into the decoder.
    pub fn extend(&mut self, data: &[u8]) {
        // Compact consumed bytes before growing so steady-state decoding
        // reuses one buffer instead of creeping forward forever.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Returns the next complete frame, `Ok(None)` if more bytes are
    /// needed, or an error if the stream is corrupt (the connection must
    /// then be dropped — the decoder does not resynchronise).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let mut lenb = [0u8; 4];
        lenb.copy_from_slice(&avail[..4]);
        let len = u32::from_le_bytes(lenb) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(FrameError::BadLength(len as u64));
        }
        if avail.len() < HEADER_LEN + len {
            // Reserve at most the declared (already validated) length.
            let needed = HEADER_LEN + len - avail.len();
            self.buf.reserve(needed);
            return Ok(None);
        }
        let mut crcb = [0u8; 4];
        crcb.copy_from_slice(&avail[4..8]);
        let expect = u32::from_le_bytes(crcb);
        let frame_bytes = &avail[HEADER_LEN..HEADER_LEN + len];
        if crc32(frame_bytes) != expect {
            return Err(FrameError::BadCrc);
        }
        let frame = decode_body(frame_bytes[0], &frame_bytes[1..])?;
        self.pos += HEADER_LEN + len;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn env(from: u32, to: u32, payload: &[u8], ctx: Option<(u64, u64)>) -> Envelope {
        Envelope {
            from: SiteId(from),
            to: SiteId(to),
            payload: Bytes::copy_from_slice(payload),
            ctx: ctx.map(|(t, p)| TraceContext {
                trace_id: t,
                parent_span_id: p,
            }),
        }
    }

    fn decode_all(bytes: &[u8]) -> Result<Vec<Frame>, FrameError> {
        let mut d = FrameDecoder::new();
        d.extend(bytes);
        let mut out = Vec::new();
        while let Some(f) = d.next_frame()? {
            out.push(f);
        }
        Ok(out)
    }

    #[test]
    fn crc32_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn envelope_roundtrip_with_and_without_ctx() {
        for ctx in [None, Some((7u64, 9u64))] {
            let e = env(3, 12, b"payload bytes", ctx);
            let mut buf = Vec::new();
            encode_envelope(&e, &mut buf);
            let frames = decode_all(&buf).unwrap();
            assert_eq!(frames.len(), 1);
            match &frames[0] {
                Frame::Envelope(d) => {
                    assert_eq!(d.from, e.from);
                    assert_eq!(d.to, e.to);
                    assert_eq!(d.payload, e.payload);
                    assert_eq!(d.ctx, e.ctx);
                }
                other => panic!("expected envelope, got {other:?}"),
            }
        }
    }

    #[test]
    fn nack_and_hello_roundtrip() {
        let mut buf = Vec::new();
        encode_nack(NackReason::Overloaded, SiteId(1), SiteId(2), &mut buf);
        encode_nack(NackReason::Unroutable, SiteId(3), SiteId(4), &mut buf);
        encode_hello(SiteId(0xFE00_0042), &mut buf);
        let frames = decode_all(&buf).unwrap();
        assert_eq!(frames.len(), 3);
        match frames[0] {
            Frame::Nack { reason, from, to } => {
                assert_eq!(reason, NackReason::Overloaded);
                assert_eq!((from, to), (SiteId(1), SiteId(2)));
            }
            ref other => panic!("expected nack, got {other:?}"),
        }
        match frames[2] {
            Frame::Hello { id } => assert_eq!(id, SiteId(0xFE00_0042)),
            ref other => panic!("expected hello, got {other:?}"),
        }
    }

    #[test]
    fn torn_reads_at_every_byte_boundary() {
        let mut buf = Vec::new();
        encode_envelope(&env(1, 2, b"torn read test", Some((11, 22))), &mut buf);
        encode_nack(NackReason::Overloaded, SiteId(5), SiteId(6), &mut buf);
        for split in 0..=buf.len() {
            let mut d = FrameDecoder::new();
            d.extend(&buf[..split]);
            let mut got = 0;
            while let Some(_f) = d.next_frame().unwrap() {
                got += 1;
            }
            d.extend(&buf[split..]);
            while let Some(_f) = d.next_frame().unwrap() {
                got += 1;
            }
            assert_eq!(got, 2, "split at byte {split}");
        }
    }

    #[test]
    fn corrupt_crc_is_rejected() {
        let mut buf = Vec::new();
        encode_envelope(&env(1, 2, b"x", None), &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert_eq!(decode_all(&buf).unwrap_err(), FrameError::BadCrc);
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.extend(&buf);
        assert!(matches!(
            d.next_frame(),
            Err(FrameError::BadLength(n)) if n == u32::MAX as u64
        ));
        // The decoder must not have ballooned its buffer toward the
        // declared length.
        assert!(d.buf.capacity() < 1024);
    }

    #[test]
    fn zero_length_is_rejected() {
        let mut d = FrameDecoder::new();
        d.extend(&[0u8; HEADER_LEN]);
        assert!(matches!(d.next_frame(), Err(FrameError::BadLength(0))));
    }

    #[test]
    fn compaction_keeps_decoding_correct() {
        let mut one = Vec::new();
        encode_envelope(&env(9, 10, &[0xAB; 300], None), &mut one);
        let mut d = FrameDecoder::new();
        for round in 0..600 {
            d.extend(&one);
            match d.next_frame().unwrap() {
                Some(Frame::Envelope(e)) => assert_eq!(e.payload.len(), 300, "round {round}"),
                other => panic!("round {round}: {other:?}"),
            }
        }
        assert!(d.buf.capacity() < 512 * 1024);
    }

    proptest! {
        #[test]
        fn random_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let mut d = FrameDecoder::new();
            d.extend(&data);
            // Either frames decode or an error is reported; never a panic,
            // never an oversized allocation.
            while let Ok(Some(_)) = d.next_frame() {}
            prop_assert!(d.buf.capacity() <= 2 * MAX_FRAME_LEN);
        }

        #[test]
        fn roundtrip_random_envelopes_with_random_chunking(
            from in 0u32..u32::MAX,
            to in 0u32..u32::MAX,
            payload in proptest::collection::vec(any::<u8>(), 0..512),
            ctx_sel in 0u8..2,
            trace_id in any::<u64>(),
            parent in any::<u64>(),
            chunk in 1usize..64,
        ) {
            let ctx = (ctx_sel == 1).then_some((trace_id, parent));
            let e = env(from, to, &payload, ctx);
            let mut buf = Vec::new();
            encode_envelope(&e, &mut buf);
            let mut d = FrameDecoder::new();
            let mut decoded = None;
            for piece in buf.chunks(chunk) {
                d.extend(piece);
                if let Some(f) = d.next_frame().unwrap() {
                    decoded = Some(f);
                }
            }
            match decoded {
                Some(Frame::Envelope(got)) => {
                    prop_assert_eq!(got.from, e.from);
                    prop_assert_eq!(got.to, e.to);
                    prop_assert_eq!(got.payload, e.payload);
                    prop_assert_eq!(got.ctx, e.ctx);
                }
                other => prop_assert!(false, "decoded {:?}", other),
            }
        }

        #[test]
        fn single_bitflip_is_rejected_or_detected(
            payload in proptest::collection::vec(any::<u8>(), 0..128),
            bit in 0usize..64,
        ) {
            let e = env(1, 2, &payload, None);
            let mut buf = Vec::new();
            encode_envelope(&e, &mut buf);
            let idx = (bit / 8) % buf.len();
            let mask = 1u8 << (bit % 8);
            buf[idx] ^= mask;
            let mut d = FrameDecoder::new();
            d.extend(&buf);
            // A flipped bit may land in the length prefix (bad length or a
            // short read that never completes) or anywhere else (bad CRC).
            // It must never produce a different, silently-accepted frame.
            match d.next_frame() {
                Ok(Some(Frame::Envelope(got))) => {
                    // Only acceptable if the flip cancelled out, which it
                    // cannot: we flipped exactly one bit.
                    prop_assert!(
                        false,
                        "corrupt frame accepted: {:?} vs {:?}",
                        got.payload, e.payload
                    );
                }
                Ok(Some(_)) => prop_assert!(false, "corrupt frame decoded as other kind"),
                Ok(None) | Err(_) => {}
            }
        }
    }
}
