//! Latency model for simulated-time accounting.
//!
//! Benchmarks on one machine cannot measure real network latency, but the
//! paper's performance claims are about message *counts* (constant-hop
//! addressing, parallel one-round searches). The model converts measured
//! traffic into simulated time so benches can report network cost without
//! sleeping.

use crate::stats::NetStats;
use std::time::Duration;

/// A linear latency model: each message costs `per_message`, each payload
/// byte adds `per_byte`.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Fixed cost per message (propagation + handling).
    pub per_message: Duration,
    /// Marginal cost per payload byte (bandwidth term).
    pub per_byte: Duration,
}

impl Default for LatencyModel {
    /// Defaults resembling a 2000s-era LAN as assumed by the SDDS papers:
    /// ~100 µs per message, 10 ns per byte (≈ 100 MB/s).
    fn default() -> LatencyModel {
        LatencyModel {
            per_message: Duration::from_micros(100),
            per_byte: Duration::from_nanos(10),
        }
    }
}

impl LatencyModel {
    /// An idealised zero-cost network (pure logic tests).
    pub fn zero() -> LatencyModel {
        LatencyModel {
            per_message: Duration::ZERO,
            per_byte: Duration::ZERO,
        }
    }

    /// Simulated time for a single message of `len` payload bytes.
    pub fn message_time(&self, len: usize) -> Duration {
        self.per_message + self.per_byte * (len as u32)
    }

    /// Total serialized network time for all traffic recorded in `stats`.
    /// (An upper bound: real traffic overlaps across links.)
    pub fn total_time(&self, stats: &NetStats) -> Duration {
        self.per_message * (stats.messages() as u32) + self.per_byte * (stats.bytes() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SiteId;

    #[test]
    fn message_time_is_linear() {
        let m = LatencyModel {
            per_message: Duration::from_micros(100),
            per_byte: Duration::from_nanos(10),
        };
        assert_eq!(m.message_time(0), Duration::from_micros(100));
        assert_eq!(
            m.message_time(1000),
            Duration::from_micros(100) + Duration::from_micros(10)
        );
    }

    #[test]
    fn zero_model_is_free() {
        let stats = NetStats::new();
        stats.record(SiteId(0), SiteId(1), 1_000_000);
        assert_eq!(LatencyModel::zero().total_time(&stats), Duration::ZERO);
    }

    #[test]
    fn total_time_accumulates() {
        let stats = NetStats::new();
        stats.record(SiteId(0), SiteId(1), 100);
        stats.record(SiteId(1), SiteId(0), 100);
        let m = LatencyModel::default();
        assert_eq!(m.total_time(&stats), m.per_message * 2 + m.per_byte * 200);
    }
}
