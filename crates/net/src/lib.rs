//! A simulated multicomputer: addressable sites, reliable in-order message
//! passing, traffic accounting and a latency model.
//!
//! The paper's setting is "multicomputers, systems utilizing many
//! interconnected computers (called the nodes or sites)" (§1) whose data
//! structures — LH\* files and the encrypted index — live across sites.
//! This crate gives those sites an execution substrate that is:
//!
//! * **real enough** — every site runs its own thread and communicates
//!   only through messages, so the LH\* forwarding logic, the parallel
//!   scatter/gather of searches, and the dispersion-site AND-combination
//!   are exercised as genuinely concurrent distributed protocols;
//! * **measurable** — [`NetStats`] counts messages and bytes per site and
//!   in total, and a configurable [`LatencyModel`] converts traffic into
//!   simulated network time without wall-clock sleeps;
//! * **deterministic under test** — channels are FIFO per sender/receiver
//!   pair and no time-dependent behaviour exists unless callers add it.
//!
//! Two transports sit behind the same [`Network`]/[`Endpoint`] surface:
//! the in-process channel fabric above, and a real TCP transport
//! ([`Network::tcp_serve`] / [`Network::tcp_client`]) where sites are
//! spread over OS processes listed in a [`SiteRegistry`], messages travel
//! as CRC-framed binary ([`frame`]), and admission control crosses the
//! wire as NACK frames. `docs/PROTOCOL.md` documents the wire format.
//!
//! ```
//! use sdds_net::{Network, NetConfig};
//! use bytes::Bytes;
//!
//! let net = Network::new(NetConfig::default());
//! let a = net.register();
//! let b = net.register();
//! a.send(b.id(), Bytes::from_static(b"hello")).unwrap();
//! let env = b.recv().unwrap();
//! assert_eq!(env.from, a.id());
//! assert_eq!(&env.payload[..], b"hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
mod latency;
mod network;
mod pool;
mod registry;
mod stats;
mod tcp;

pub use latency::LatencyModel;
pub use network::{Endpoint, Envelope, NetConfig, NetError, Network, SiteId};
pub use pool::PooledBuf;
pub use registry::{SiteRegistry, COORD_ID, DYN_BASE, HOST_BASE};
pub use stats::NetStats;
