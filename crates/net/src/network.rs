//! Site registry, endpoints and message delivery.

use crate::latency::LatencyModel;
use crate::stats::NetStats;
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::RwLock;
use sdds_obs::trace::{self, TraceContext};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Address of a site in the multicomputer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site-{}", self.0)
    }
}

/// A delivered message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// Opaque payload.
    pub payload: Bytes,
    /// Causal tracing context of the client operation this message
    /// belongs to; `None` for untraced traffic. Carried verbatim across
    /// forwards so every site can parent its span under the sender's
    /// (wire format in `docs/PROTOCOL.md`).
    pub ctx: Option<TraceContext>,
}

/// Errors from the messaging layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination site was never registered.
    UnknownSite(SiteId),
    /// The destination endpoint has been dropped.
    Disconnected(SiteId),
    /// The destination inbox is at capacity: admission control rejected
    /// the message at the sender (see [`NetConfig::inbox_capacity`]).
    /// Unlike a fault-injected drop, the sender *knows* — shed load is
    /// explicit and retryable.
    Overloaded(SiteId),
    /// A blocking receive timed out.
    Timeout,
    /// The mailbox is empty (non-blocking receive).
    Empty,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownSite(s) => write!(f, "unknown site {s}"),
            NetError::Disconnected(s) => write!(f, "site {s} disconnected"),
            NetError::Overloaded(s) => write!(f, "site {s} inbox full, send rejected"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Empty => write!(f, "mailbox empty"),
        }
    }
}

impl std::error::Error for NetError {}

/// Network construction parameters.
#[derive(Debug, Clone, Default)]
pub struct NetConfig {
    /// Latency model used for simulated-time accounting.
    pub latency: LatencyModel,
    /// Fault injection: probability in `[0, 1)` that any message is
    /// silently dropped (UDP-style loss). Deterministic per `fault_seed`.
    pub drop_probability: f64,
    /// Seed for the drop decision stream.
    pub fault_seed: u64,
    /// Bound on every site's inbox. `None` (the default) keeps the
    /// historical unbounded mailboxes. With `Some(cap)`, a send to a
    /// site whose inbox already holds `cap` envelopes fails at the
    /// sender with [`NetError::Overloaded`] instead of queueing without
    /// limit — explicit admission control in place of OOM.
    pub inbox_capacity: Option<usize>,
}

/// Transport backing a [`Network`]: in-process crossbeam channels (the
/// historical simulated multicomputer) or real TCP connections between
/// OS processes (see [`crate::tcp`]).
enum Mode {
    Channel {
        mailboxes: RwLock<Vec<Sender<Envelope>>>,
    },
    Tcp(crate::tcp::TcpFabric),
}

struct Inner {
    mode: Mode,
    stats: Arc<NetStats>,
    latency: LatencyModel,
    drop_probability: f64,
    inbox_capacity: Option<usize>,
    fault_rng: std::sync::atomic::AtomicU64,
}

/// The multicomputer fabric: a registry of sites plus traffic accounting.
/// Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Network {
    inner: Arc<Inner>,
}

impl Network {
    /// Creates an empty in-process (channel-transport) network.
    pub fn new(config: NetConfig) -> Network {
        Network::with_mode(
            Mode::Channel {
                mailboxes: RwLock::new(Vec::new()),
            },
            config,
        )
    }

    /// Creates a serving TCP network: binds rank `rank`'s listener from
    /// the registry and accepts connections from peers. Fault injection
    /// (`drop_probability`) and the simulated latency model do not apply
    /// to TCP — the wire provides real loss and real latency.
    pub fn tcp_serve(
        registry: crate::registry::SiteRegistry,
        rank: usize,
        config: NetConfig,
    ) -> std::io::Result<Network> {
        let stats = Arc::new(NetStats::new());
        let fabric = crate::tcp::TcpFabric::serve(
            registry,
            rank,
            config.inbox_capacity,
            Arc::clone(&stats),
        )?;
        Ok(Network::with_stats(Mode::Tcp(fabric), config, stats))
    }

    /// Creates a client TCP network: dial-only, no listener. Endpoints
    /// registered on it receive dynamically allocated site ids announced
    /// to every server rank.
    pub fn tcp_client(registry: crate::registry::SiteRegistry, config: NetConfig) -> Network {
        let stats = Arc::new(NetStats::new());
        let fabric =
            crate::tcp::TcpFabric::client(registry, config.inbox_capacity, Arc::clone(&stats));
        Network::with_stats(Mode::Tcp(fabric), config, stats)
    }

    fn with_mode(mode: Mode, config: NetConfig) -> Network {
        Network::with_stats(mode, config, Arc::new(NetStats::new()))
    }

    fn with_stats(mode: Mode, config: NetConfig, stats: Arc<NetStats>) -> Network {
        Network {
            inner: Arc::new(Inner {
                mode,
                stats,
                latency: config.latency,
                drop_probability: config.drop_probability,
                inbox_capacity: config.inbox_capacity,
                fault_rng: std::sync::atomic::AtomicU64::new(config.fault_seed | 1),
            }),
        }
    }

    /// Registers a new site and returns its endpoint. On the channel
    /// transport site ids are dense, starting at 0 — convenient for LH\*
    /// bucket addressing. On TCP the endpoint gets a dynamically
    /// allocated client id, announced to every server rank.
    pub fn register(&self) -> Endpoint {
        match &self.inner.mode {
            Mode::Channel { mailboxes } => {
                let (tx, rx) = match self.inner.inbox_capacity {
                    Some(cap) => channel::bounded(cap),
                    None => channel::unbounded(),
                };
                let mut boxes = mailboxes.write();
                let id = SiteId(boxes.len() as u32);
                boxes.push(tx);
                Endpoint {
                    id,
                    rx,
                    network: self.clone(),
                }
            }
            Mode::Tcp(fabric) => {
                let (id, rx) = fabric.register_dynamic();
                Endpoint {
                    id,
                    rx,
                    network: self.clone(),
                }
            }
        }
    }

    /// Registers an endpoint under a specific well-known id (TCP only:
    /// bucket addresses, the coordinator, host-control endpoints).
    /// Returns `None` on the channel transport — its ids are dense and
    /// allocator-owned — or if the id is already taken in this process.
    pub fn register_with_id(&self, id: SiteId) -> Option<Endpoint> {
        match &self.inner.mode {
            Mode::Channel { .. } => None,
            Mode::Tcp(fabric) => fabric.register_static(id).map(|rx| Endpoint {
                id,
                rx,
                network: self.clone(),
            }),
        }
    }

    /// Number of sites registered in this process.
    pub fn num_sites(&self) -> usize {
        match &self.inner.mode {
            Mode::Channel { mailboxes } => mailboxes.read().len(),
            Mode::Tcp(fabric) => fabric.num_local(),
        }
    }

    /// Severs every established TCP stream (fault injection for tests:
    /// connections re-establish with backoff). No-op on the channel
    /// transport.
    pub fn drop_connections(&self) {
        if let Mode::Tcp(fabric) = &self.inner.mode {
            fabric.drop_connections();
        }
    }

    /// Traffic statistics handle.
    pub fn stats(&self) -> &NetStats {
        self.inner.stats.as_ref()
    }

    /// Total simulated network time accrued by all messages under the
    /// configured latency model.
    pub fn simulated_time(&self) -> Duration {
        self.inner.latency.total_time(&self.inner.stats)
    }

    fn deliver(&self, env: Envelope) -> Result<(), NetError> {
        let mailboxes = match &self.inner.mode {
            Mode::Channel { mailboxes } => mailboxes,
            Mode::Tcp(fabric) => return fabric.deliver(env),
        };
        let boxes = mailboxes.read();
        let tx = boxes
            .get(env.to.0 as usize)
            .ok_or(NetError::UnknownSite(env.to))?;
        if self.inner.drop_probability > 0.0 && self.draw_drop() {
            // silent loss, like a UDP datagram: the sender sees success
            self.inner.stats.record_dropped();
            sdds_obs::counter("net.dropped").inc();
            if let Some(ctx) = env.ctx {
                // The drop stays attributable: an instantaneous span under
                // the sender's context marks where the operation's message
                // vanished (detail = payload length).
                trace::event("net.drop", ctx, env.to.0 as i64, env.payload.len() as u64);
            }
            return Ok(());
        }
        // Traffic counters reflect messages actually enqueued: a failed
        // send must not inflate delivered-message stats (drops are
        // accounted separately above). Record first so a receiver that
        // dequeues the message always observes it counted, then roll back
        // on the (rare) disconnected-endpoint failure.
        let (from, to, len) = (env.from, env.to, env.payload.len());
        let ctx = env.ctx;
        self.inner.stats.record(from, to, len);
        match tx.try_send(env) {
            Ok(()) => {}
            Err(channel::TrySendError::Full(_)) => {
                // Admission control: the inbox is at capacity, so the send
                // is refused *at the sender* — unlike a fault-injected
                // drop, the caller learns and can back off and retry.
                self.inner.stats.unrecord(from, to, len);
                self.inner.stats.record_rejected();
                sdds_obs::counter("net.rejected").inc();
                if let Some(ctx) = ctx {
                    // The rejection stays attributable inside the trace it
                    // belonged to, exactly like net.drop (detail = payload
                    // length); no orphan roots.
                    trace::event("net.reject", ctx, to.0 as i64, len as u64);
                }
                return Err(NetError::Overloaded(to));
            }
            Err(channel::TrySendError::Disconnected(_)) => {
                self.inner.stats.unrecord(from, to, len);
                sdds_obs::counter("net.send_failures").inc();
                return Err(NetError::Disconnected(to));
            }
        }
        sdds_obs::counter("net.messages").inc();
        sdds_obs::counter("net.bytes").add(len as u64);
        sdds_obs::counter("net.sim_latency_nanos")
            .add(self.inner.latency.message_time(len).as_nanos() as u64);
        Ok(())
    }

    /// Deterministic xorshift64* drop decision (no extra dependency, and
    /// reproducible for a given fault seed).
    fn draw_drop(&self) -> bool {
        use std::sync::atomic::Ordering;
        fn step(mut x: u64) -> u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
        // A CAS loop: concurrent senders must each consume a distinct
        // state, or two of them can read the same value and emit the
        // same (duplicated, then lost) stream position.
        let prev = self
            .inner
            .fault_rng
            // ordering: Relaxed — the RNG state is the only shared datum;
            // CAS atomicity alone guarantees each sender a distinct stream
            // position, and no other memory is published through it
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |x| Some(step(x)))
            // lint: allow(panic-freedom) -- the closure always returns Some, so fetch_update cannot fail
            .expect("xorshift update never fails");
        // fetch_update returns the state *before* our update; re-apply the
        // step to obtain the value this draw owns.
        let x = step(prev);
        let draw = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
        draw < self.inner.drop_probability
    }
}

/// A site's attachment to the network: its identity, its mailbox, and the
/// ability to send to any other site.
pub struct Endpoint {
    id: SiteId,
    rx: Receiver<Envelope>,
    network: Network,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint").field("id", &self.id).finish()
    }
}

impl Endpoint {
    /// This site's address.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// The network this endpoint belongs to.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Sends a payload to another site (or to self). The innermost open
    /// span on the calling thread (if any) is attached as the message's
    /// tracing context, so instrumented callers propagate causality
    /// without changing call sites.
    pub fn send(&self, to: SiteId, payload: Bytes) -> Result<(), NetError> {
        self.send_traced(to, payload, trace::current_context())
    }

    /// Sends a payload with an explicit tracing context (use when the
    /// causal parent is not the calling thread's innermost span — e.g.
    /// replies and forwards on a site's event loop).
    pub fn send_traced(
        &self,
        to: SiteId,
        payload: Bytes,
        ctx: Option<TraceContext>,
    ) -> Result<(), NetError> {
        self.network.deliver(Envelope {
            from: self.id,
            to,
            payload,
            ctx,
        })
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<Envelope, NetError> {
        self.rx.recv().map_err(|_| NetError::Disconnected(self.id))
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            channel::RecvTimeoutError::Timeout => NetError::Timeout,
            channel::RecvTimeoutError::Disconnected => NetError::Disconnected(self.id),
        })
    }

    /// Number of envelopes currently waiting in this site's inbox.
    /// Event loops sample it into the `lh.inbox_depth` gauge so queue
    /// buildup is visible before admission control starts rejecting.
    pub fn inbox_depth(&self) -> usize {
        self.rx.len()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Envelope, NetError> {
        self.rx.try_recv().map_err(|e| match e {
            channel::TryRecvError::Empty => NetError::Empty,
            channel::TryRecvError::Disconnected => NetError::Disconnected(self.id),
        })
    }

    /// Sends the same payload to many sites (scatter).
    pub fn broadcast<I: IntoIterator<Item = SiteId>>(
        &self,
        to: I,
        payload: &Bytes,
    ) -> Result<(), NetError> {
        for site in to {
            self.send(site, payload.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_assigns_dense_ids() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        let b = net.register();
        let c = net.register();
        assert_eq!(a.id(), SiteId(0));
        assert_eq!(b.id(), SiteId(1));
        assert_eq!(c.id(), SiteId(2));
        assert_eq!(net.num_sites(), 3);
    }

    #[test]
    fn send_and_receive() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        let b = net.register();
        a.send(b.id(), Bytes::from_static(b"ping")).unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.from, a.id());
        assert_eq!(env.to, b.id());
        assert_eq!(&env.payload[..], b"ping");
    }

    #[test]
    fn fifo_per_pair() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        let b = net.register();
        for i in 0..100u8 {
            a.send(b.id(), Bytes::copy_from_slice(&[i])).unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(b.recv().unwrap().payload[0], i);
        }
    }

    #[test]
    fn unknown_site_rejected() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        assert_eq!(
            a.send(SiteId(42), Bytes::new()),
            Err(NetError::UnknownSite(SiteId(42)))
        );
    }

    #[test]
    fn self_send_works() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        a.send(a.id(), Bytes::from_static(b"loop")).unwrap();
        assert_eq!(&a.recv().unwrap().payload[..], b"loop");
    }

    #[test]
    fn try_recv_empty() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        assert_eq!(a.try_recv().unwrap_err(), NetError::Empty);
    }

    #[test]
    fn recv_timeout_elapses() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        let err = a.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, NetError::Timeout);
    }

    #[test]
    fn disconnected_receiver_detected() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        let b = net.register();
        let b_id = b.id();
        drop(b);
        assert_eq!(
            a.send(b_id, Bytes::new()),
            Err(NetError::Disconnected(b_id))
        );
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        let b = net.register();
        a.send(b.id(), Bytes::from_static(b"12345")).unwrap();
        a.send(b.id(), Bytes::from_static(b"678")).unwrap();
        assert_eq!(net.stats().messages(), 2);
        assert_eq!(net.stats().bytes(), 8);
        assert_eq!(net.stats().messages_from(a.id()), 2);
        assert_eq!(net.stats().messages_to(b.id()), 2);
    }

    #[test]
    fn broadcast_reaches_all() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        let sites: Vec<Endpoint> = (0..5).map(|_| net.register()).collect();
        let ids: Vec<SiteId> = sites.iter().map(|s| s.id()).collect();
        a.broadcast(ids, &Bytes::from_static(b"all")).unwrap();
        for s in &sites {
            assert_eq!(&s.recv().unwrap().payload[..], b"all");
        }
    }

    #[test]
    fn fault_injection_drops_deterministically() {
        let lossy = NetConfig {
            drop_probability: 0.3,
            fault_seed: 42,
            ..NetConfig::default()
        };
        let net = Network::new(lossy.clone());
        let a = net.register();
        let b = net.register();
        for i in 0..1000u32 {
            a.send(b.id(), Bytes::copy_from_slice(&i.to_le_bytes()))
                .unwrap();
        }
        let dropped = net.stats().dropped();
        assert!(
            (200..400).contains(&(dropped as usize)),
            "expected ~30% of 1000 dropped, got {dropped}"
        );
        // delivered + dropped = sent
        let mut received = 0;
        while a.try_recv().is_ok() || b.try_recv().is_ok() {
            received += 1;
        }
        assert_eq!(received as u64 + dropped, 1000);
        // determinism: an identical network drops the identical messages
        let net2 = Network::new(lossy);
        let a2 = net2.register();
        let b2 = net2.register();
        for i in 0..1000u32 {
            a2.send(b2.id(), Bytes::copy_from_slice(&i.to_le_bytes()))
                .unwrap();
        }
        assert_eq!(net2.stats().dropped(), dropped);
    }

    #[test]
    fn concurrent_senders_drop_deterministically() {
        // The drop decisions come from one shared xorshift stream; the CAS
        // in draw_drop guarantees each send consumes a distinct position,
        // so the *count* of drops over N sends is the count of
        // sub-threshold values in the first N stream positions — invariant
        // under thread interleaving.
        let lossy = NetConfig {
            drop_probability: 0.3,
            fault_seed: 977,
            ..NetConfig::default()
        };
        let run = || {
            let net = Network::new(lossy.clone());
            let sink = net.register();
            let nthreads = 8;
            let per_thread = 250u64;
            std::thread::scope(|scope| {
                for _ in 0..nthreads {
                    let tx = net.register();
                    let to = sink.id();
                    scope.spawn(move || {
                        for i in 0..per_thread {
                            tx.send(to, Bytes::copy_from_slice(&i.to_le_bytes()))
                                .unwrap();
                        }
                    });
                }
            });
            let mut received = 0u64;
            while sink.try_recv().is_ok() {
                received += 1;
            }
            let dropped = net.stats().dropped();
            assert_eq!(
                received + dropped,
                nthreads * per_thread,
                "every send must be either delivered or counted dropped"
            );
            dropped
        };
        let d1 = run();
        let d2 = run();
        assert!(
            (450..750).contains(&(d1 as usize)),
            "expected ~30% of 2000 dropped, got {d1}"
        );
        assert_eq!(d1, d2, "drop count must not depend on thread interleaving");
    }

    #[test]
    fn failed_send_does_not_inflate_stats() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        let b = net.register();
        let b_id = b.id();
        drop(b);
        assert_eq!(
            a.send(b_id, Bytes::from_static(b"lost")),
            Err(NetError::Disconnected(b_id))
        );
        assert_eq!(net.stats().messages(), 0, "failed send counted as traffic");
        assert_eq!(net.stats().bytes(), 0);
        assert_eq!(net.stats().messages_from(a.id()), 0);
        assert_eq!(net.stats().messages_to(b_id), 0);
        // a subsequent successful send still counts normally
        a.send(a.id(), Bytes::from_static(b"ok")).unwrap();
        assert_eq!(net.stats().messages(), 1);
        assert_eq!(net.stats().bytes(), 2);
    }

    #[test]
    fn zero_drop_probability_never_drops() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        for _ in 0..100 {
            a.send(a.id(), Bytes::new()).unwrap();
        }
        assert_eq!(net.stats().dropped(), 0);
    }

    #[test]
    fn bounded_inbox_rejects_at_sender() {
        let net = Network::new(NetConfig {
            inbox_capacity: Some(2),
            ..NetConfig::default()
        });
        let a = net.register();
        let b = net.register();
        a.send(b.id(), Bytes::from_static(b"1")).unwrap();
        a.send(b.id(), Bytes::from_static(b"2")).unwrap();
        assert_eq!(
            a.send(b.id(), Bytes::from_static(b"3")),
            Err(NetError::Overloaded(b.id())),
            "third send must be refused at the sender"
        );
        assert_eq!(net.stats().rejected(), 1);
        assert_eq!(b.inbox_depth(), 2);
        // Draining one slot readmits traffic.
        assert_eq!(&b.recv().unwrap().payload[..], b"1");
        a.send(b.id(), Bytes::from_static(b"3")).unwrap();
        assert_eq!(&b.recv().unwrap().payload[..], b"2");
        assert_eq!(&b.recv().unwrap().payload[..], b"3");
    }

    #[test]
    fn rejected_sends_do_not_inflate_delivery_stats() {
        let net = Network::new(NetConfig {
            inbox_capacity: Some(4),
            ..NetConfig::default()
        });
        let a = net.register();
        let b = net.register();
        let sent = 20u64;
        let mut ok = 0u64;
        for i in 0..sent {
            match a.send(b.id(), Bytes::copy_from_slice(&i.to_le_bytes())) {
                Ok(()) => ok += 1,
                Err(NetError::Overloaded(s)) => assert_eq!(s, b.id()),
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        // Invariant: delivered + dropped + rejected == sent.
        assert_eq!(
            net.stats().messages() + net.stats().dropped() + net.stats().rejected(),
            sent
        );
        assert_eq!(net.stats().messages(), ok);
        assert_eq!(net.stats().rejected(), sent - ok);
        assert_eq!(net.stats().messages_from(a.id()), ok);
        assert_eq!(net.stats().messages_to(b.id()), ok);
        assert_eq!(net.stats().bytes(), ok * 8);
        let mut received = 0u64;
        while b.try_recv().is_ok() {
            received += 1;
        }
        assert_eq!(received, ok, "every counted message is receivable");
    }

    #[test]
    fn overloaded_invariant_holds_under_concurrent_senders() {
        let net = Network::new(NetConfig {
            inbox_capacity: Some(8),
            ..NetConfig::default()
        });
        let sink = net.register();
        let nthreads = 4u64;
        let per_thread = 500u64;
        std::thread::scope(|scope| {
            for _ in 0..nthreads {
                let tx = net.register();
                let to = sink.id();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Either outcome is legal under load; the stats
                        // invariant below must hold regardless.
                        let _ = tx.send(to, Bytes::copy_from_slice(&i.to_le_bytes()));
                    }
                });
            }
        });
        let mut received = 0u64;
        while sink.try_recv().is_ok() {
            received += 1;
        }
        assert_eq!(received, net.stats().messages());
        assert_eq!(
            net.stats().messages() + net.stats().dropped() + net.stats().rejected(),
            nthreads * per_thread
        );
        assert!(
            net.stats().rejected() > 0,
            "8-deep inbox under 2000 sends must shed"
        );
    }

    #[test]
    fn unbounded_default_never_rejects() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        for i in 0..10_000u32 {
            a.send(a.id(), Bytes::copy_from_slice(&i.to_le_bytes()))
                .unwrap();
        }
        assert_eq!(net.stats().rejected(), 0);
        assert_eq!(a.inbox_depth(), 10_000);
    }

    #[test]
    fn trace_context_rides_envelopes_and_survives_drops() {
        // One test (not several) because the flight recorder and the
        // tracing flag are process-global: parallel test threads draining
        // spans would race each other. Everything is filtered by our own
        // trace id so concurrent instrumented code cannot confuse us.
        trace::set_tracing(true);
        let root = trace::root_span("test.net.op");
        let ctx = root.context().expect("tracing enabled");

        // Explicit context is delivered verbatim.
        let net = Network::new(NetConfig::default());
        let a = net.register();
        let b = net.register();
        a.send_traced(b.id(), Bytes::from_static(b"x"), Some(ctx))
            .unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.ctx, Some(ctx));

        // Ambient context: a plain send inside an open span carries it.
        a.send(b.id(), Bytes::from_static(b"y")).unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.ctx, Some(ctx));

        // A dropped traced message records a net.drop event under the
        // same trace, so retries remain attributable end to end.
        let lossy = Network::new(NetConfig {
            drop_probability: 1.0,
            fault_seed: 7,
            ..NetConfig::default()
        });
        let la = lossy.register();
        let lb = lossy.register();
        la.send_traced(lb.id(), Bytes::from_static(b"gone"), Some(ctx))
            .unwrap();
        assert_eq!(lossy.stats().dropped(), 1);
        assert!(lb.try_recv().is_err());

        // A traced send rejected by admission control records a net.reject
        // event *inside* the same trace — shed load stays attributable and
        // never fabricates an orphan root.
        let tiny = Network::new(NetConfig {
            inbox_capacity: Some(1),
            ..NetConfig::default()
        });
        let ta = tiny.register();
        let tb = tiny.register();
        ta.send_traced(tb.id(), Bytes::from_static(b"fits"), Some(ctx))
            .unwrap();
        assert_eq!(
            ta.send_traced(tb.id(), Bytes::from_static(b"shed!"), Some(ctx)),
            Err(NetError::Overloaded(tb.id()))
        );
        assert_eq!(tiny.stats().rejected(), 1);

        drop(root);
        let spans = trace::drain_spans();
        let mine: Vec<_> = spans
            .iter()
            .filter(|s| s.trace_id == ctx.trace_id)
            .collect();
        let drop_ev = mine
            .iter()
            .find(|s| s.name == "net.drop")
            .expect("drop event recorded");
        assert_eq!(drop_ev.parent_span_id, ctx.parent_span_id);
        assert_eq!(drop_ev.detail, 4); // payload length
        let reject_ev = mine
            .iter()
            .find(|s| s.name == "net.reject")
            .expect("reject event recorded");
        assert_eq!(reject_ev.parent_span_id, ctx.parent_span_id);
        assert_eq!(reject_ev.detail, 5); // payload length of "shed!"
        assert_eq!(reject_ev.site, tb.id().0 as i64);
        assert!(mine.iter().any(|s| s.name == "test.net.op"));
        trace::set_tracing(false);
    }

    #[test]
    fn untraced_sends_carry_no_context() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        let b = net.register();
        a.send(b.id(), Bytes::from_static(b"plain")).unwrap();
        assert_eq!(b.recv().unwrap().ctx, None);
    }

    #[test]
    fn cross_thread_messaging() {
        let net = Network::new(NetConfig::default());
        let server = net.register();
        let client = net.register();
        let server_id = server.id();
        let handle = std::thread::spawn(move || {
            // echo server: double the byte back
            let env = server.recv().unwrap();
            let reply = Bytes::copy_from_slice(&[env.payload[0] * 2]);
            server.send(env.from, reply).unwrap();
        });
        client
            .send(server_id, Bytes::copy_from_slice(&[21]))
            .unwrap();
        let env = client.recv().unwrap();
        assert_eq!(env.payload[0], 42);
        handle.join().unwrap();
    }
}
