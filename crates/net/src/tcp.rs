//! Real TCP transport: multi-process sites over framed connections.
//!
//! One [`TcpFabric`] per process attaches that process to a cluster
//! described by a [`SiteRegistry`]. Server ranks bind a listener; client
//! processes only dial. All connections are persistent and pooled per
//! peer:
//!
//! * **Writer thread per connection.** Senders encode envelopes into
//!   pooled buffers and enqueue them on the connection (bounded queue —
//!   a full queue surfaces as `NetError::Overloaded`, admission control
//!   exactly like a full in-process inbox). The writer drains *everything*
//!   queued at that moment, concatenates the frames, and issues a single
//!   `write` syscall (`TCP_NODELAY` is set, so coalescing is explicit
//!   here, not delegated to Nagle). Connections dial lazily and
//!   re-dial with exponential backoff (10 ms doubling to 2 s).
//! * **Reader thread per connection** feeding the same bounded
//!   crossbeam inboxes the in-process transport uses, so `Endpoint::recv`
//!   and every event loop above it are transport-agnostic.
//! * **NACK backpressure.** A receiver that cannot enqueue an envelope
//!   (inbox full past a short grace window, or destination gone) replies
//!   with a NACK frame. The sender records the NACK as a *debt* against
//!   that destination: the next send to it fails with
//!   `Overloaded`/`Disconnected`, so `RetryPolicy` backoff behaves the
//!   same as in-process — one send later than the channel transport,
//!   because the wire is asynchronous. The NACKed message itself is lost,
//!   which the LH* protocol already tolerates (idempotent retransmits).
//! * **Routing by id.** Well-known ids (buckets, coordinator, host
//!   control) map to a rank via the registry. Dynamic client ids are
//!   announced with hello frames on every connection the client opens
//!   (and re-announced on reconnect), so any rank can route replies.
//!
//! Fault injection (`drop_probability`) and the simulated latency model
//! apply only to the in-process transport; TCP loses and delays messages
//! the real way.

use crate::frame::{self, Frame, FrameDecoder, NackReason};
use crate::network::{Envelope, NetError, SiteId};
use crate::pool::PooledBuf;
use crate::registry::{SiteRegistry, DYN_BASE};
use crate::stats::NetStats;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::{Condvar, Mutex, RwLock};
use sdds_obs::trace;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Encoded frames a connection will buffer before senders see
/// `Overloaded`. NACKs and hellos bypass the bound (they are tiny and
/// carry the backpressure signal itself).
const MAX_CONN_QUEUE: usize = 4096;

/// First dial-retry backoff; doubles up to [`MAX_BACKOFF`].
const INITIAL_BACKOFF: Duration = Duration::from_millis(10);
const MAX_BACKOFF: Duration = Duration::from_secs(2);

/// How long a receiver nurses a full local inbox before NACKing.
const INBOX_GRACE: Duration = Duration::from_millis(50);

/// How long a receiver waits for a not-yet-registered well-known id
/// (rides the remote bucket-spawn race) before NACKing unroutable.
const SPAWN_GRACE: Duration = Duration::from_secs(2);

#[derive(Default)]
struct Debt {
    overloaded: u32,
    unroutable: bool,
}

enum EnqueueError {
    Full,
    Closed,
}

struct ConnState {
    queue: VecDeque<PooledBuf>,
    /// Established stream, kept for `drop_connections`/shutdown; the
    /// writer and reader hold their own clones.
    stream: Option<TcpStream>,
    /// Bumped every time a stream is established; lets the reader that
    /// owned generation N avoid clobbering generation N+1's state.
    generation: u64,
    /// Permanently closed: an accepted connection whose stream died, or
    /// fabric shutdown. Dial connections never close until shutdown.
    closed: bool,
}

struct Conn {
    /// `Some(addr)`: this end dials (and re-dials) `addr`. `None`: the
    /// stream was accepted; when it dies the peer is expected to re-dial.
    dial: Option<String>,
    state: Mutex<ConnState>,
    cond: Condvar,
}

impl Conn {
    fn enqueue(&self, buf: PooledBuf, force: bool) -> Result<(), EnqueueError> {
        {
            let mut st = self.state.lock();
            if st.closed {
                return Err(EnqueueError::Closed);
            }
            if !force && st.queue.len() >= MAX_CONN_QUEUE {
                return Err(EnqueueError::Full);
            }
            st.queue.push_back(buf);
        }
        self.cond.notify_one();
        Ok(())
    }

    fn close_stream(&self) {
        let st = self.state.lock();
        if let Some(s) = &st.stream {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

struct Shared {
    registry: SiteRegistry,
    rank: Option<usize>,
    inbox_capacity: Option<usize>,
    stats: Arc<NetStats>,
    shutdown: AtomicBool,
    /// Local inboxes by raw site id.
    locals: RwLock<HashMap<u32, Sender<Envelope>>>,
    /// Dynamically allocated local ids, re-announced on every connect.
    local_dyn: Mutex<Vec<u32>>,
    next_dyn: AtomicU32,
    dyn_base: u32,
    /// Dial connections by server rank.
    peers: Mutex<HashMap<usize, Arc<Conn>>>,
    /// Accepted connections (kept alive for shutdown/fault injection).
    inbound: Mutex<Vec<Arc<Conn>>>,
    /// Learned routes for dynamic ids: which connection reaches them.
    routes: Mutex<HashMap<u32, Arc<Conn>>>,
    /// NACK debts by destination id.
    debts: Mutex<HashMap<u32, Debt>>,
    listen_addr: Option<String>,
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        // ordering: Relaxed — the flag is a quiescent-state hint polled by
        // worker threads; no other memory is published through it
        self.shutdown.load(Ordering::Relaxed)
    }

    fn make_inbox(&self) -> (Sender<Envelope>, Receiver<Envelope>) {
        match self.inbox_capacity {
            Some(cap) => channel::bounded(cap),
            None => channel::unbounded(),
        }
    }
}

/// A process's attachment to a TCP cluster. Owned by `Network`.
pub(crate) struct TcpFabric {
    shared: Arc<Shared>,
}

impl TcpFabric {
    /// Serving fabric: binds the listener for `rank` and accepts peers.
    pub(crate) fn serve(
        registry: SiteRegistry,
        rank: usize,
        inbox_capacity: Option<usize>,
        stats: Arc<NetStats>,
    ) -> std::io::Result<TcpFabric> {
        let addr = registry.addr(rank).unwrap_or("").to_string();
        let listener = TcpListener::bind(&addr)?;
        let fabric = TcpFabric::new(registry, Some(rank), inbox_capacity, stats, Some(addr));
        let shared = Arc::clone(&fabric.shared);
        std::thread::spawn(move || accept_loop(shared, listener));
        Ok(fabric)
    }

    /// Client fabric: dial-only, no listener.
    pub(crate) fn client(
        registry: SiteRegistry,
        inbox_capacity: Option<usize>,
        stats: Arc<NetStats>,
    ) -> TcpFabric {
        TcpFabric::new(registry, None, inbox_capacity, stats, None)
    }

    fn new(
        registry: SiteRegistry,
        rank: Option<usize>,
        inbox_capacity: Option<usize>,
        stats: Arc<NetStats>,
        listen_addr: Option<String>,
    ) -> TcpFabric {
        // Stripe dynamic ids by pid *and* per-process fabric ordinal so
        // neither concurrent client processes nor multiple fabrics in one
        // process (threads-as-ranks tests, in-process benches) collide in
        // the shared id space — a collision silently blackholes replies
        // into whichever fabric resolves the id locally first.
        static FABRIC_SEQ: AtomicU32 = AtomicU32::new(0);
        // ordering: Relaxed — a pure ordinal allocator; fetch_add
        // atomicity alone guarantees distinct stripes
        let seq = FABRIC_SEQ.fetch_add(1, Ordering::Relaxed);
        let stripe = (std::process::id().wrapping_mul(0x9E37).wrapping_add(seq) % 0xFFF) << 12;
        TcpFabric {
            shared: Arc::new(Shared {
                registry,
                rank,
                inbox_capacity,
                stats,
                shutdown: AtomicBool::new(false),
                locals: RwLock::new(HashMap::new()),
                local_dyn: Mutex::new(Vec::new()),
                next_dyn: AtomicU32::new(0),
                dyn_base: DYN_BASE + stripe,
                peers: Mutex::new(HashMap::new()),
                inbound: Mutex::new(Vec::new()),
                routes: Mutex::new(HashMap::new()),
                debts: Mutex::new(HashMap::new()),
                listen_addr,
            }),
        }
    }

    /// Registers a well-known local id (bucket address, coordinator or
    /// host-control endpoint). Returns `None` if the id is already taken.
    pub(crate) fn register_static(&self, id: SiteId) -> Option<Receiver<Envelope>> {
        let (tx, rx) = self.shared.make_inbox();
        let mut locals = self.shared.locals.write();
        if locals.contains_key(&id.0) {
            return None;
        }
        locals.insert(id.0, tx);
        Some(rx)
    }

    /// Allocates a dynamic (client) id, announces it to every server rank,
    /// and returns it with its inbox.
    pub(crate) fn register_dynamic(&self) -> (SiteId, Receiver<Envelope>) {
        let shared = &self.shared;
        // ordering: Relaxed — a pure id allocator; uniqueness comes from
        // fetch_add atomicity, and the id is published via locks below
        let n = shared.next_dyn.fetch_add(1, Ordering::Relaxed);
        let id = SiteId(shared.dyn_base.wrapping_add(n & 0xFFF));
        let (tx, rx) = shared.make_inbox();
        shared.locals.write().insert(id.0, tx);
        shared.local_dyn.lock().push(id.0);
        // Announce on a connection to every rank (dialing lazily creates
        // them) so any rank — including ones that only ever see forwarded
        // traffic for us — can route replies.
        for rank in 0..shared.registry.num_servers() {
            if let Some(conn) = self.peer_conn(rank) {
                let mut buf = PooledBuf::take();
                frame::encode_hello(id, buf.as_mut_vec());
                let _ = conn.enqueue(buf, true);
            }
        }
        (id, rx)
    }

    /// Number of locally hosted endpoints.
    pub(crate) fn num_local(&self) -> usize {
        self.shared.locals.read().len()
    }

    /// Severs every established stream (fault injection / tests). Dial
    /// connections re-establish with backoff; accepted ones wait for the
    /// peer to re-dial.
    pub(crate) fn drop_connections(&self) {
        for conn in self.shared.peers.lock().values() {
            conn.close_stream();
        }
        for conn in self.shared.inbound.lock().iter() {
            conn.close_stream();
        }
        sdds_obs::counter("net.tcp.conn_drops").inc();
    }

    fn peer_conn(&self, rank: usize) -> Option<Arc<Conn>> {
        let shared = &self.shared;
        let addr = shared.registry.addr(rank)?.to_string();
        let mut peers = shared.peers.lock();
        if let Some(c) = peers.get(&rank) {
            return Some(Arc::clone(c));
        }
        let conn = Arc::new(Conn {
            dial: Some(addr),
            state: Mutex::new(ConnState {
                queue: VecDeque::new(),
                stream: None,
                generation: 0,
                closed: false,
            }),
            cond: Condvar::new(),
        });
        peers.insert(rank, Arc::clone(&conn));
        let s = Arc::clone(shared);
        let c = Arc::clone(&conn);
        std::thread::spawn(move || writer_loop(s, c));
        Some(conn)
    }

    /// Sender-side delivery. Mirrors the in-process transport's
    /// accounting: stats/counters reflect messages actually enqueued,
    /// refusals surface as `Overloaded`, lost peers as `Disconnected`.
    pub(crate) fn deliver(&self, env: Envelope) -> Result<(), NetError> {
        let shared = &self.shared;
        let to = env.to;
        let owner = shared.registry.owner_rank(to);

        // Local destination: same semantics as the channel transport.
        let local = { shared.locals.read().get(&to.0).cloned() };
        if let Some(tx) = local {
            return local_send(shared, &tx, env);
        }
        if owner.is_some() && owner == shared.rank {
            // A well-known id we own that is not registered *yet*: the
            // coordinator announces remote spawns asynchronously, so treat
            // the gap as backpressure — must-land senders park and retry,
            // and the spawn lands within the retry window.
            return refuse_overloaded(shared, &env);
        }

        // Consume any NACK debt before handing more frames to the wire.
        let pending = shared.debts.lock().remove(&to.0);
        if let Some(mut d) = pending {
            if d.unroutable {
                shared.routes.lock().remove(&to.0);
                sdds_obs::counter("net.send_failures").inc();
                return Err(NetError::Disconnected(to));
            }
            if d.overloaded > 0 {
                d.overloaded -= 1;
                if d.overloaded > 0 {
                    // Put the remaining debt back (merging with any NACKs
                    // the reader recorded while we held it).
                    shared.debts.lock().entry(to.0).or_default().overloaded += d.overloaded;
                }
                return refuse_overloaded(shared, &env);
            }
        }

        let conn = match owner {
            Some(rank) => self.peer_conn(rank),
            None => {
                let routes = shared.routes.lock();
                routes.get(&to.0).map(Arc::clone)
            }
        };
        let Some(conn) = conn else {
            sdds_obs::counter("net.send_failures").inc();
            return Err(NetError::Disconnected(to));
        };

        let (from, len, ctx) = (env.from, env.payload.len(), env.ctx);
        let mut buf = PooledBuf::take();
        frame::encode_envelope(&env, buf.as_mut_vec());
        shared.stats.record(from, to, len);
        match conn.enqueue(buf, false) {
            Ok(()) => {
                sdds_obs::counter("net.messages").inc();
                sdds_obs::counter("net.bytes").add(len as u64);
                Ok(())
            }
            Err(EnqueueError::Full) => {
                shared.stats.unrecord(from, to, len);
                shared.stats.record_rejected();
                sdds_obs::counter("net.rejected").inc();
                if let Some(ctx) = ctx {
                    trace::event("net.reject", ctx, to.0 as i64, len as u64);
                }
                Err(NetError::Overloaded(to))
            }
            Err(EnqueueError::Closed) => {
                shared.stats.unrecord(from, to, len);
                sdds_obs::counter("net.send_failures").inc();
                Err(NetError::Disconnected(to))
            }
        }
    }

    /// Begins teardown: stops accepting, wakes writers, severs streams.
    fn begin_shutdown(&self) {
        let shared = &self.shared;
        // ordering: Relaxed — see `is_shutdown`; threads observe the flag
        // at their next poll, which is all teardown needs
        shared.shutdown.store(true, Ordering::Relaxed);
        for conn in shared.peers.lock().values() {
            conn.close_stream();
            conn.cond.notify_all();
        }
        for conn in shared.inbound.lock().iter() {
            conn.close_stream();
            conn.cond.notify_all();
        }
        // Unblock the accept loop with a throwaway connection.
        if let Some(addr) = &shared.listen_addr {
            let _ = TcpStream::connect(addr);
        }
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}

fn refuse_overloaded(shared: &Shared, env: &Envelope) -> Result<(), NetError> {
    shared.stats.record_rejected();
    sdds_obs::counter("net.rejected").inc();
    if let Some(ctx) = env.ctx {
        trace::event("net.reject", ctx, env.to.0 as i64, env.payload.len() as u64);
    }
    Err(NetError::Overloaded(env.to))
}

fn local_send(shared: &Shared, tx: &Sender<Envelope>, env: Envelope) -> Result<(), NetError> {
    let (from, to, len, ctx) = (env.from, env.to, env.payload.len(), env.ctx);
    shared.stats.record(from, to, len);
    match tx.try_send(env) {
        Ok(()) => {
            sdds_obs::counter("net.messages").inc();
            sdds_obs::counter("net.bytes").add(len as u64);
            Ok(())
        }
        Err(TrySendError::Full(_)) => {
            shared.stats.unrecord(from, to, len);
            shared.stats.record_rejected();
            sdds_obs::counter("net.rejected").inc();
            if let Some(ctx) = ctx {
                trace::event("net.reject", ctx, to.0 as i64, len as u64);
            }
            Err(NetError::Overloaded(to))
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.stats.unrecord(from, to, len);
            sdds_obs::counter("net.send_failures").inc();
            Err(NetError::Disconnected(to))
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.is_shutdown() {
                    return;
                }
                continue;
            }
        };
        if shared.is_shutdown() {
            return;
        }
        sdds_obs::counter("net.tcp.accepts").inc();
        let _ = stream.set_nodelay(true);
        let state_handle = stream.try_clone().ok();
        let reader_handle = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn = Arc::new(Conn {
            dial: None,
            state: Mutex::new(ConnState {
                queue: VecDeque::new(),
                stream: state_handle,
                generation: 1,
                closed: false,
            }),
            cond: Condvar::new(),
        });
        shared.inbound.lock().push(Arc::clone(&conn));
        {
            let s = Arc::clone(&shared);
            let c = Arc::clone(&conn);
            std::thread::spawn(move || writer_loop(s, c));
        }
        {
            let s = Arc::clone(&shared);
            let c = Arc::clone(&conn);
            std::thread::spawn(move || reader_loop(s, c, reader_handle, 1));
        }
    }
}

/// Dials (for dial connections) until a stream is established or the
/// connection is closed/shut down. Returns the writer's stream handle.
fn establish(shared: &Arc<Shared>, conn: &Arc<Conn>) -> Option<TcpStream> {
    let addr = conn.dial.as_ref()?;
    let mut backoff = INITIAL_BACKOFF;
    loop {
        if shared.is_shutdown() || conn.state.lock().closed {
            return None;
        }
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let (Ok(state_handle), Ok(reader_handle)) =
                    (stream.try_clone(), stream.try_clone())
                else {
                    sdds_obs::counter("net.tcp.dial_failures").inc();
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(MAX_BACKOFF);
                    continue;
                };
                let generation = {
                    let mut st = conn.state.lock();
                    st.generation += 1;
                    st.stream = Some(state_handle);
                    st.generation
                };
                if generation == 1 {
                    sdds_obs::counter("net.tcp.connects").inc();
                } else {
                    sdds_obs::counter("net.tcp.reconnects").inc();
                }
                {
                    let s = Arc::clone(shared);
                    let c = Arc::clone(conn);
                    std::thread::spawn(move || reader_loop(s, c, reader_handle, generation));
                }
                return Some(stream);
            }
            Err(_) => {
                sdds_obs::counter("net.tcp.dial_failures").inc();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_BACKOFF);
            }
        }
    }
}

fn writer_loop(shared: Arc<Shared>, conn: Arc<Conn>) {
    let mut stream: Option<TcpStream> = None;
    let mut stream_gen = 0u64;
    let mut coalesce: Vec<u8> = Vec::new();
    loop {
        // Wait until there is something to write (or we are done).
        {
            let mut st = conn.state.lock();
            loop {
                if st.closed || shared.is_shutdown() {
                    let dropped = st.queue.len();
                    st.queue.clear();
                    if dropped > 0 {
                        sdds_obs::counter("net.tcp.frames_dropped").add(dropped as u64);
                    }
                    return;
                }
                if !st.queue.is_empty() {
                    break;
                }
                st = conn.cond.wait(st);
            }
            if st.generation != stream_gen {
                stream = None;
            }
        }

        // Make sure we have a live stream before draining the queue.
        if stream.is_none() {
            match conn.dial {
                Some(_) => {
                    stream = establish(&shared, &conn);
                    if let Some(_s) = &stream {
                        stream_gen = conn.state.lock().generation;
                        // (Re)announce our dynamic ids first on every new
                        // stream so the peer can route replies.
                        let hello = {
                            let ids = shared.local_dyn.lock();
                            let mut buf = Vec::new();
                            for &id in ids.iter() {
                                frame::encode_hello(SiteId(id), &mut buf);
                            }
                            buf
                        };
                        if !hello.is_empty() {
                            if let Some(s) = &mut stream {
                                if s.write_all(&hello).is_ok() {
                                    sdds_obs::counter("net.tcp.writes").inc();
                                    sdds_obs::counter("net.tcp.bytes_sent").add(hello.len() as u64);
                                } else {
                                    stream = None;
                                }
                            }
                        }
                    }
                    if stream.is_none() {
                        // Closed or shutting down while dialing.
                        continue;
                    }
                }
                None => {
                    // Accepted stream: refresh our clone, or give up if it
                    // is gone (the peer must re-dial).
                    let mut st = conn.state.lock();
                    match st.stream.as_ref().and_then(|s| s.try_clone().ok()) {
                        Some(s) => {
                            stream = Some(s);
                            stream_gen = st.generation;
                        }
                        None => {
                            st.closed = true;
                            continue;
                        }
                    }
                }
            }
        }

        // Drain everything queued right now into one buffer: explicit
        // write coalescing — all frames of one drain batch leave in a
        // single write syscall.
        coalesce.clear();
        let mut frames = 0u64;
        {
            let mut st = conn.state.lock();
            while let Some(buf) = st.queue.pop_front() {
                coalesce.extend_from_slice(buf.as_slice());
                frames += 1;
            }
        }
        if frames == 0 {
            continue;
        }
        let ok = match &mut stream {
            Some(s) => s.write_all(&coalesce).is_ok(),
            None => false,
        };
        if ok {
            sdds_obs::counter("net.tcp.writes").inc();
            sdds_obs::counter("net.tcp.frames_sent").add(frames);
            sdds_obs::counter("net.tcp.bytes_sent").add(coalesce.len() as u64);
        } else {
            // The frames of this batch are lost — exactly like an
            // in-flight datagram on a dead link. The protocol retransmits.
            sdds_obs::counter("net.tcp.frames_dropped").add(frames);
            stream = None;
            let mut st = conn.state.lock();
            if st.generation == stream_gen {
                st.stream = None;
                if conn.dial.is_none() {
                    st.closed = true;
                }
            }
        }
    }
}

fn reader_loop(shared: Arc<Shared>, conn: Arc<Conn>, mut stream: TcpStream, generation: u64) {
    let mut decoder = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    'stream: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break 'stream,
            Ok(n) => n,
        };
        sdds_obs::counter("net.tcp.bytes_received").add(n as u64);
        decoder.extend(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => handle_frame(&shared, &conn, frame),
                Ok(None) => break,
                Err(_) => {
                    // Corrupt stream: drop the connection, never resync.
                    sdds_obs::counter("net.tcp.frame_errors").inc();
                    let _ = stream.shutdown(Shutdown::Both);
                    break 'stream;
                }
            }
        }
        if shared.is_shutdown() {
            break;
        }
    }
    // Tear down this generation's stream state (unless a newer stream
    // already replaced it).
    {
        let mut st = conn.state.lock();
        if st.generation == generation {
            st.stream = None;
            if conn.dial.is_none() {
                st.closed = true;
            }
        }
    }
    conn.cond.notify_all();
    if conn.dial.is_none() {
        // Remove the dead inbound connection and any routes through it.
        shared.inbound.lock().retain(|c| !Arc::ptr_eq(c, &conn));
        shared.routes.lock().retain(|_, c| !Arc::ptr_eq(c, &conn));
    }
}

fn handle_frame(shared: &Arc<Shared>, conn: &Arc<Conn>, frame: Frame) {
    match frame {
        Frame::Hello { id } => {
            shared.routes.lock().insert(id.0, Arc::clone(conn));
        }
        Frame::Nack {
            reason,
            from: _,
            to,
        } => {
            sdds_obs::counter("net.tcp.nacks_received").inc();
            let mut debts = shared.debts.lock();
            let d = debts.entry(to.0).or_default();
            match reason {
                NackReason::Overloaded => d.overloaded = d.overloaded.saturating_add(1),
                NackReason::Unroutable => d.unroutable = true,
            }
        }
        Frame::Envelope(env) => {
            sdds_obs::counter("net.tcp.frames_received").inc();
            if env.from.0 >= DYN_BASE && env.from.0 < crate::registry::COORD_ID {
                // Learn the reply route even if the hello raced us.
                shared.routes.lock().insert(env.from.0, Arc::clone(conn));
            }
            incoming(shared, conn, env);
        }
    }
}

/// Receiver-side delivery of an envelope that arrived over the wire.
fn incoming(shared: &Arc<Shared>, conn: &Arc<Conn>, env: Envelope) {
    let start = Instant::now();
    let (from, to, len) = (env.from, env.to, env.payload.len());
    let mut env = Some(env);
    loop {
        let tx = { shared.locals.read().get(&to.0).cloned() };
        match tx {
            Some(tx) => {
                let Some(e) = env.take() else { return };
                shared.stats.record(from, to, len);
                match tx.try_send(e) {
                    Ok(()) => {
                        sdds_obs::counter("net.messages").inc();
                        sdds_obs::counter("net.bytes").add(len as u64);
                        return;
                    }
                    Err(TrySendError::Full(e)) => {
                        shared.stats.unrecord(from, to, len);
                        if start.elapsed() >= INBOX_GRACE {
                            sdds_obs::counter("net.tcp.inbox_full").inc();
                            nack(conn, NackReason::Overloaded, from, to);
                            return;
                        }
                        env = Some(e);
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        // The endpoint is gone (bucket retired): tell the
                        // sender it is unroutable now.
                        shared.stats.unrecord(from, to, len);
                        shared.locals.write().remove(&to.0);
                        sdds_obs::counter("net.tcp.unroutable").inc();
                        nack(conn, NackReason::Unroutable, from, to);
                        return;
                    }
                }
            }
            None if SiteRegistry::is_static(to)
                && shared.registry.owner_rank(to) == shared.rank =>
            {
                // Not registered yet: ride the remote-spawn race for a
                // bounded window before refusing.
                if start.elapsed() >= SPAWN_GRACE || shared.is_shutdown() {
                    sdds_obs::counter("net.tcp.unroutable").inc();
                    nack(conn, NackReason::Unroutable, from, to);
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            None => {
                sdds_obs::counter("net.tcp.unroutable").inc();
                nack(conn, NackReason::Unroutable, from, to);
                return;
            }
        }
    }
}

fn nack(conn: &Arc<Conn>, reason: NackReason, from: SiteId, to: SiteId) {
    sdds_obs::counter("net.tcp.nacks_sent").inc();
    let mut buf = PooledBuf::take();
    frame::encode_nack(reason, from, to, buf.as_mut_vec());
    let _ = conn.enqueue(buf, true);
}

#[cfg(test)]
mod tests {
    use crate::network::{NetConfig, NetError, Network, SiteId};
    use crate::registry::SiteRegistry;
    use bytes::Bytes;
    use std::net::TcpListener;
    use std::time::Duration;

    /// Reserves `n` distinct loopback ports and returns a registry using
    /// them. The listeners are dropped before the fabric binds; the gap
    /// is a benign race for single-process tests.
    fn loopback_registry(n: usize) -> SiteRegistry {
        let mut addrs = Vec::new();
        let mut keep = Vec::new();
        for _ in 0..n {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            addrs.push(format!("127.0.0.1:{}", l.local_addr().unwrap().port()));
            keep.push(l);
        }
        drop(keep);
        SiteRegistry::from_addrs(addrs).unwrap()
    }

    const RECV: Duration = Duration::from_secs(5);

    #[test]
    fn client_to_server_and_reply() {
        let reg = loopback_registry(1);
        let server = Network::tcp_serve(reg.clone(), 0, NetConfig::default()).unwrap();
        let bucket = server.register_with_id(SiteId(0)).unwrap();

        let clientnet = Network::tcp_client(reg, NetConfig::default());
        let client = clientnet.register();
        assert!(client.id().0 >= crate::registry::DYN_BASE);

        client
            .send(SiteId(0), Bytes::from_static(b"request"))
            .unwrap();
        let env = bucket.recv_timeout(RECV).unwrap();
        assert_eq!(env.from, client.id());
        assert_eq!(&env.payload[..], b"request");

        bucket
            .send(client.id(), Bytes::from_static(b"response"))
            .unwrap();
        let back = client.recv_timeout(RECV).unwrap();
        assert_eq!(back.from, SiteId(0));
        assert_eq!(&back.payload[..], b"response");
    }

    #[test]
    fn server_to_server_by_owner_rank() {
        let reg = loopback_registry(2);
        let s0 = Network::tcp_serve(reg.clone(), 0, NetConfig::default()).unwrap();
        let s1 = Network::tcp_serve(reg, 1, NetConfig::default()).unwrap();
        // Bucket addresses: 0 lives on rank 0, 1 lives on rank 1.
        let b0 = s0.register_with_id(SiteId(0)).unwrap();
        let b1 = s1.register_with_id(SiteId(1)).unwrap();

        b0.send(SiteId(1), Bytes::from_static(b"cross")).unwrap();
        let env = b1.recv_timeout(RECV).unwrap();
        assert_eq!(env.from, SiteId(0));
        assert_eq!(&env.payload[..], b"cross");

        b1.send(SiteId(0), Bytes::from_static(b"back")).unwrap();
        assert_eq!(&b0.recv_timeout(RECV).unwrap().payload[..], b"back");
    }

    #[test]
    fn trace_context_rides_the_wire() {
        use sdds_obs::trace::TraceContext;
        let reg = loopback_registry(1);
        let server = Network::tcp_serve(reg.clone(), 0, NetConfig::default()).unwrap();
        let bucket = server.register_with_id(SiteId(0)).unwrap();
        let clientnet = Network::tcp_client(reg, NetConfig::default());
        let client = clientnet.register();

        let ctx = TraceContext {
            trace_id: 0xDEAD_BEEF,
            parent_span_id: 42,
        };
        client
            .send_traced(SiteId(0), Bytes::from_static(b"traced"), Some(ctx))
            .unwrap();
        let env = bucket.recv_timeout(RECV).unwrap();
        assert_eq!(env.ctx, Some(ctx));

        client
            .send_traced(SiteId(0), Bytes::from_static(b"bare"), None)
            .unwrap();
        assert_eq!(bucket.recv_timeout(RECV).unwrap().ctx, None);
    }

    #[test]
    fn overloaded_inbox_nacks_back_to_sender() {
        let reg = loopback_registry(1);
        let config = NetConfig {
            inbox_capacity: Some(1),
            ..NetConfig::default()
        };
        let server = Network::tcp_serve(reg.clone(), 0, config.clone()).unwrap();
        let bucket = server.register_with_id(SiteId(0)).unwrap();
        let clientnet = Network::tcp_client(reg, config);
        let client = clientnet.register();

        // First message fills the inbox; the second exhausts the
        // receiver's grace window and is NACKed.
        client.send(SiteId(0), Bytes::from_static(b"a")).unwrap();
        client.send(SiteId(0), Bytes::from_static(b"b")).unwrap();

        // The NACK debt surfaces as Overloaded on a later send.
        let mut saw_overloaded = false;
        for _ in 0..100 {
            std::thread::sleep(Duration::from_millis(20));
            // Never drain: the inbox must stay full so the receiver's
            // grace window elapses and the NACK fires.
            if let Err(NetError::Overloaded(to)) =
                client.send(SiteId(0), Bytes::from_static(b"probe"))
            {
                assert_eq!(to, SiteId(0));
                saw_overloaded = true;
                break;
            }
        }
        assert!(saw_overloaded, "NACK debt never surfaced as Overloaded");
        let _ = bucket.try_recv();
    }

    #[test]
    fn retired_endpoint_becomes_disconnected() {
        let reg = loopback_registry(1);
        let server = Network::tcp_serve(reg.clone(), 0, NetConfig::default()).unwrap();
        let bucket = server.register_with_id(SiteId(0)).unwrap();
        drop(bucket); // bucket retires: receiver gone

        let clientnet = Network::tcp_client(reg, NetConfig::default());
        let client = clientnet.register();
        // First send reaches the server, which NACKs unroutable; the debt
        // surfaces as Disconnected on a later send.
        let mut saw_disconnected = false;
        for _ in 0..100 {
            match client.send(SiteId(0), Bytes::from_static(b"x")) {
                Err(NetError::Disconnected(_)) => {
                    saw_disconnected = true;
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        assert!(saw_disconnected, "unroutable NACK never surfaced");
        let _ = server;
    }

    #[test]
    fn severed_connections_reconnect_and_reroute_replies() {
        let reg = loopback_registry(1);
        let server = Network::tcp_serve(reg.clone(), 0, NetConfig::default()).unwrap();
        let bucket = server.register_with_id(SiteId(0)).unwrap();
        let clientnet = Network::tcp_client(reg, NetConfig::default());
        let client = clientnet.register();

        client.send(SiteId(0), Bytes::from_static(b"one")).unwrap();
        assert_eq!(&bucket.recv_timeout(RECV).unwrap().payload[..], b"one");

        let reconnects = sdds_obs::counter("net.tcp.reconnects").get();
        server.drop_connections();
        std::thread::sleep(Duration::from_millis(50));

        // Retry until the writer re-dials; messages written into the dead
        // stream are lost, exactly like drops, so resend.
        let mut delivered = false;
        for _ in 0..200 {
            let _ = client.send(SiteId(0), Bytes::from_static(b"two"));
            if let Ok(env) = bucket.recv_timeout(Duration::from_millis(100)) {
                assert_eq!(&env.payload[..], b"two");
                delivered = true;
                break;
            }
        }
        assert!(delivered, "no delivery after severed connection");
        assert!(
            sdds_obs::counter("net.tcp.reconnects").get() > reconnects,
            "reconnect counter did not move"
        );

        // The re-dialed stream re-announced the client id: replies still
        // route.
        bucket
            .send(client.id(), Bytes::from_static(b"reply"))
            .unwrap();
        let mut reply = None;
        for _ in 0..50 {
            if let Ok(env) = client.recv_timeout(Duration::from_millis(100)) {
                reply = Some(env);
                break;
            }
            let _ = bucket.send(client.id(), Bytes::from_static(b"reply"));
        }
        assert_eq!(
            &reply.expect("no reply after reconnect").payload[..],
            b"reply"
        );
    }

    #[test]
    fn writes_coalesce_bursts_into_fewer_syscalls() {
        let reg = loopback_registry(1);
        let server = Network::tcp_serve(reg.clone(), 0, NetConfig::default()).unwrap();
        let bucket = server.register_with_id(SiteId(0)).unwrap();
        let clientnet = Network::tcp_client(reg, NetConfig::default());
        let client = clientnet.register();

        // Prime the connection so the burst below doesn't pay dial time.
        client
            .send(SiteId(0), Bytes::from_static(b"prime"))
            .unwrap();
        bucket.recv_timeout(RECV).unwrap();

        let writes_before = sdds_obs::counter("net.tcp.writes").get();
        const BURST: usize = 500;
        for i in 0..BURST {
            client
                .send(SiteId(0), Bytes::copy_from_slice(&i.to_le_bytes()))
                .unwrap();
        }
        for _ in 0..BURST {
            bucket.recv_timeout(RECV).unwrap();
        }
        let writes = sdds_obs::counter("net.tcp.writes").get() - writes_before;
        // Coalescing must pack the burst into far fewer syscalls than
        // frames. Other tests run concurrently against the same global
        // counter, so the bound is loose — but without coalescing this
        // would be >= 500 from this connection alone.
        assert!(
            (writes as usize) < BURST / 2,
            "burst of {BURST} frames took {writes} writes (no coalescing?)"
        );
    }
}
