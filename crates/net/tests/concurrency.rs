//! Concurrency properties of the simulated multicomputer: per-pair FIFO
//! under real thread interleavings, accounting consistency, and fan-in
//! delivery.

use bytes::Bytes;
use sdds_net::{NetConfig, NetError, Network};
use std::collections::HashMap;

#[test]
fn per_pair_fifo_survives_many_senders() {
    let net = Network::new(NetConfig::default());
    let sink = net.register();
    let nsenders = 8;
    let per_sender = 500u32;
    std::thread::scope(|scope| {
        for _ in 0..nsenders {
            let ep = net.register();
            let to = sink.id();
            scope.spawn(move || {
                for i in 0..per_sender {
                    let mut payload = Vec::with_capacity(8);
                    payload.extend_from_slice(&ep.id().0.to_le_bytes());
                    payload.extend_from_slice(&i.to_le_bytes());
                    ep.send(to, Bytes::from(payload)).unwrap();
                }
            });
        }
        scope.spawn(|| {
            // receiver: every sender's sequence numbers must arrive in order
            let mut next: HashMap<u32, u32> = HashMap::new();
            for _ in 0..nsenders * per_sender {
                let env = sink.recv().unwrap();
                let from = u32::from_le_bytes(env.payload[0..4].try_into().unwrap());
                let seq = u32::from_le_bytes(env.payload[4..8].try_into().unwrap());
                let expect = next.entry(from).or_insert(0);
                assert_eq!(seq, *expect, "out-of-order from site {from}");
                *expect += 1;
            }
        });
    });
    assert_eq!(
        net.stats().messages(),
        u64::from(nsenders) * u64::from(per_sender)
    );
}

#[test]
fn accounting_is_exact_under_concurrency() {
    let net = Network::new(NetConfig::default());
    let a = net.register();
    let b = net.register();
    let (a_id, b_id) = (a.id(), b.id());
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for _ in 0..1000 {
                a.send(b_id, Bytes::from_static(&[0u8; 10])).unwrap();
            }
        });
        scope.spawn(|| {
            for _ in 0..1000 {
                b.send(a_id, Bytes::from_static(&[0u8; 20])).unwrap();
            }
        });
    });
    let stats = net.stats();
    assert_eq!(stats.messages(), 2000);
    assert_eq!(stats.bytes(), 1000 * 10 + 1000 * 20);
    assert_eq!(stats.bytes_from(a_id), 10_000);
    assert_eq!(stats.bytes_from(b_id), 20_000);
    assert_eq!(stats.bytes_to(a_id), 20_000);
    assert_eq!(stats.bytes_to(b_id), 10_000);
}

#[test]
fn dropped_endpoint_mid_traffic_is_an_error_not_a_hang() {
    let net = Network::new(NetConfig::default());
    let a = net.register();
    let b = net.register();
    let b_id = b.id();
    a.send(b_id, Bytes::from_static(b"one")).unwrap();
    drop(b);
    // subsequent sends fail fast
    assert_eq!(
        a.send(b_id, Bytes::from_static(b"two")),
        Err(NetError::Disconnected(b_id))
    );
}
