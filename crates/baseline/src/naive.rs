//! The fetch-decrypt-scan baseline.
//!
//! Strong encryption only: records are AES-CBC ciphertexts at the sites
//! and cannot be searched there. A search must ship **every** record to
//! the client, decrypt, and scan locally — the approach the paper rules
//! out for any real database size (§1). The store exists so benches can
//! put numbers (bytes moved, time spent) behind that sentence.

use sdds_cipher::{modes, Aes128, CipherError, KeyMaterial, MasterKey};
use sdds_lh::{ClusterConfig, LhClient, LhCluster, LhError, ScanFilter};
use std::sync::Arc;

/// A filter that matches everything — the "search" of a naive store is a
/// full download.
#[derive(Debug, Default, Clone, Copy)]
pub struct MatchAllFilter;

impl ScanFilter for MatchAllFilter {
    fn matches(&self, _key: u64, _value: &[u8], _query: &[u8]) -> bool {
        true
    }
}

/// Errors of the naive store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaiveError {
    /// LH\* failure.
    Lh(LhError),
    /// A downloaded record failed to decrypt.
    Decrypt(CipherError),
}

impl std::fmt::Display for NaiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NaiveError::Lh(e) => write!(f, "lh*: {e}"),
            NaiveError::Decrypt(e) => write!(f, "decrypt: {e}"),
        }
    }
}

impl std::error::Error for NaiveError {}

impl From<LhError> for NaiveError {
    fn from(e: LhError) -> Self {
        NaiveError::Lh(e)
    }
}

/// Strong-encryption-only store: full confidentiality, no server-side
/// search.
pub struct NaiveStore {
    cipher: Aes128,
    keys: KeyMaterial,
    cluster: LhCluster,
    client: LhClient,
}

impl NaiveStore {
    /// Starts the store.
    pub fn start(master: &MasterKey, bucket_capacity: usize) -> NaiveStore {
        let keys = KeyMaterial::new(master.clone());
        let cluster = LhCluster::start(ClusterConfig {
            bucket_capacity,
            filter: Arc::new(MatchAllFilter),
            ..ClusterConfig::default()
        });
        let client = cluster.client();
        NaiveStore {
            cipher: keys.record_cipher(),
            keys,
            cluster,
            client,
        }
    }

    /// Inserts a record (strongly encrypted).
    pub fn insert(&self, rid: u64, rc: &str) -> Result<(), NaiveError> {
        let iv = self.keys.record_iv(rid);
        let ct = modes::cbc_encrypt(&self.cipher, &iv, rc.as_bytes());
        self.client.insert(rid, ct)?;
        Ok(())
    }

    /// Searches by downloading the whole file, decrypting, and scanning —
    /// the pattern can be arbitrary, but every byte crosses the network.
    pub fn search(&self, pattern: &str) -> Result<Vec<u64>, NaiveError> {
        let all = self.client.scan(&[], false)?;
        let mut hits = Vec::new();
        for m in all {
            let Some(ct) = m.value else { continue };
            let iv = self.keys.record_iv(m.key);
            let pt = modes::cbc_decrypt(&self.cipher, &iv, &ct).map_err(NaiveError::Decrypt)?;
            let matched =
                pattern.is_empty() || pt.windows(pattern.len()).any(|w| w == pattern.as_bytes());
            if matched {
                hits.push(m.key);
            }
        }
        hits.sort_unstable();
        Ok(hits)
    }

    /// The cluster, for traffic accounting.
    pub fn cluster(&self) -> &LhCluster {
        &self.cluster
    }

    /// Stops the cluster.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_arbitrary_substrings_but_moves_everything() {
        let store = NaiveStore::start(&MasterKey::new([1; 16]), 16);
        store.insert(1, "SCHWARZ THOMAS").unwrap();
        store.insert(2, "LITWIN WITOLD").unwrap();
        store.insert(3, "TSUI PETER").unwrap();
        store.cluster().network().stats().reset();
        // arbitrary substring search works…
        assert_eq!(store.search("CHWAR").unwrap(), vec![1]);
        // …but the download is the whole file
        let bytes = store.cluster().network().stats().bytes();
        let all_ct: usize = 3 * 16; // at least one AES block per record
        assert!(
            bytes as usize > all_ct,
            "naive search must move at least every ciphertext: {bytes}"
        );
        store.shutdown();
    }

    #[test]
    fn empty_pattern_matches_all() {
        let store = NaiveStore::start(&MasterKey::new([1; 16]), 16);
        store.insert(5, "ANYTHING").unwrap();
        assert_eq!(store.search("").unwrap(), vec![5]);
        store.shutdown();
    }

    #[test]
    fn confidentiality_at_rest() {
        let store = NaiveStore::start(&MasterKey::new([1; 16]), 16);
        store.insert(9, "SECRET NAME").unwrap();
        // peek at what the site actually stores via a raw LH* client
        let raw = store.cluster().client();
        let ct = raw.lookup(9).unwrap().unwrap();
        assert!(!ct.windows(6).any(|w| w == b"SECRET"));
        store.shutdown();
    }
}
