//! Baselines the ICDE'06 scheme is evaluated against.
//!
//! * [`swp`] — the word-granular searchable encryption of Song, Wagner &
//!   Perrig \[SWP00\], the comparator the paper names: "in contrast to the
//!   work by Song et al., we want to be able to search for arbitrary
//!   patterns, not just words" (§1). We implement the SWP sequential-scan
//!   construction (pre-encrypted words XORed with a checkable pseudorandom
//!   stream) and an [`swp::SwpStore`] running it over the same LH\*
//!   cluster, so benches compare like for like.
//! * [`naive`] — the fetch-everything-decrypt-and-scan client the paper
//!   dismisses up front: "the sheer size of the database makes it
//!   impossible to send encrypted data to a client, decrypt the data
//!   there, and search" (§1). [`naive::NaiveStore`] measures exactly that
//!   traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod naive;
pub mod swp;
