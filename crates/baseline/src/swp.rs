//! The Song–Wagner–Perrig sequential-scan searchable encryption \[SWP00\].
//!
//! Scheme (their "final scheme", word-granular):
//!
//! * every word `w` is canonicalised to a 16-byte block and pre-encrypted,
//!   `X_i = E_{k''}(w_i)`, split into `X_i = ⟨L_i, R_i⟩` (8 + 8 bytes);
//! * the owner draws a pseudorandom `S_i` (8 bytes) per position and forms
//!   the checkable stream word `T_i = ⟨S_i, F_{k_i}(S_i)⟩` where
//!   `k_i = f_{k'}(L_i)` depends on the word;
//! * the stored ciphertext is `C_i = X_i ⊕ T_i`.
//!
//! To search for `w`, the client reveals the trapdoor `(X, k_w)`; a site
//! scans its positions computing `⟨s, t⟩ = C_i ⊕ X` and reports a match
//! when `t = F_{k_w}(s)` — correct with false-positive probability 2⁻⁶⁴,
//! but **only for whole words**: a substring of a word has a different
//! `X`, which is precisely the limitation the ICDE'06 scheme removes.

use sdds_cipher::{Aes128, MasterKey};
use sdds_lh::{ClusterConfig, LhClient, LhCluster, LhError, ScanFilter};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One encrypted word position: `C_i = ⟨L ⊕ S, R ⊕ F(S)⟩`.
pub type CipherWord = [u8; 16];

/// The word-level searchable encryption scheme.
pub struct SwpScheme {
    /// E — word pre-encryption.
    word_cipher: Aes128,
    /// f — derives the per-word check key from L.
    key_derive: Aes128,
    /// source of the per-record pseudorandom stream S.
    stream: Aes128,
}

/// A search trapdoor: reveals the word's pre-encryption and check key,
/// nothing else.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trapdoor {
    /// `X = E(w)`.
    pub x: [u8; 16],
    /// `k_w = f(L)`.
    pub kw: [u8; 16],
}

impl SwpScheme {
    /// Derives the scheme's sub-keys from a master key.
    pub fn new(master: &MasterKey) -> SwpScheme {
        SwpScheme {
            word_cipher: Aes128::new(&master.derive("swp-word", 0)),
            key_derive: Aes128::new(&master.derive("swp-kd", 0)),
            stream: Aes128::new(&master.derive("swp-stream", 0)),
        }
    }

    /// Canonicalises a word into its 16-byte block (hash-pad, as SWP
    /// suggest for variable-length words).
    fn word_block(&self, word: &str) -> [u8; 16] {
        self.word_cipher.prf(word.as_bytes())
    }

    fn pre_encrypt(&self, word: &str) -> [u8; 16] {
        let mut x = self.word_block(word);
        self.word_cipher.encrypt_block(&mut x);
        x
    }

    fn check_key(&self, left: &[u8]) -> [u8; 16] {
        self.key_derive.prf(left)
    }

    /// Encrypts a record's words into its searchable stream.
    pub fn index_record(&self, rid: u64, rc: &str) -> Vec<CipherWord> {
        rc.split_whitespace()
            .enumerate()
            .map(|(i, word)| {
                let x = self.pre_encrypt(word);
                let (l, r) = x.split_at(8);
                // S_i: pseudorandom, reproducible by the owner only
                let mut seed = Vec::with_capacity(16);
                seed.extend_from_slice(&rid.to_le_bytes());
                seed.extend_from_slice(&(i as u64).to_le_bytes());
                let s = &self.stream.prf(&seed)[..8];
                let ki = self.check_key(l);
                let f = &Aes128::new(&ki).prf(s)[..8];
                let mut c = [0u8; 16];
                for b in 0..8 {
                    c[b] = l[b] ^ s[b];
                    c[8 + b] = r[b] ^ f[b];
                }
                c
            })
            .collect()
    }

    /// Builds the trapdoor for a word.
    pub fn trapdoor(&self, word: &str) -> Trapdoor {
        let x = self.pre_encrypt(word);
        let kw = self.check_key(&x[..8]);
        Trapdoor { x, kw }
    }

    /// The site-side check: does position `c` hold the trapdoor's word?
    pub fn matches(c: &CipherWord, t: &Trapdoor) -> bool {
        let mut s = [0u8; 8];
        let mut tt = [0u8; 8];
        for b in 0..8 {
            s[b] = c[b] ^ t.x[b];
            tt[b] = c[8 + b] ^ t.x[8 + b];
        }
        let f = Aes128::new(&t.kw).prf(&s);
        f[..8] == tt
    }
}

/// Scan filter evaluating SWP trapdoors at bucket sites.
#[derive(Debug, Default, Clone, Copy)]
pub struct SwpFilter;

impl ScanFilter for SwpFilter {
    fn matches(&self, _key: u64, value: &[u8], query: &[u8]) -> bool {
        let Ok(trapdoor) = serde_json::from_slice::<Trapdoor>(query) else {
            return false;
        };
        value.chunks_exact(16).any(|c| {
            let mut cw = [0u8; 16];
            cw.copy_from_slice(c);
            SwpScheme::matches(&cw, &trapdoor)
        })
    }
}

/// The SWP baseline running over the same LH\* substrate as the main
/// scheme: one searchable word-stream record per `(RID, RC)`.
pub struct SwpStore {
    scheme: SwpScheme,
    cluster: LhCluster,
    client: LhClient,
}

impl SwpStore {
    /// Starts a store with the given master key.
    pub fn start(master: &MasterKey, bucket_capacity: usize) -> SwpStore {
        let cluster = LhCluster::start(ClusterConfig {
            bucket_capacity,
            filter: Arc::new(SwpFilter),
            ..ClusterConfig::default()
        });
        let client = cluster.client();
        SwpStore {
            scheme: SwpScheme::new(master),
            cluster,
            client,
        }
    }

    /// Inserts a record's searchable word stream.
    pub fn insert(&self, rid: u64, rc: &str) -> Result<(), LhError> {
        let stream = self.scheme.index_record(rid, rc);
        let body: Vec<u8> = stream.iter().flatten().copied().collect();
        self.client.insert(rid, body)?;
        Ok(())
    }

    /// Word search: returns RIDs whose stream contains the word.
    pub fn search_word(&self, word: &str) -> Result<Vec<u64>, LhError> {
        let t = self.scheme.trapdoor(word);
        let query = serde_json::to_vec(&t).expect("trapdoor serializes");
        let matches = self.client.scan(&query, true)?;
        Ok(matches.into_iter().map(|m| m.key).collect())
    }

    /// The cluster, for traffic accounting.
    pub fn cluster(&self) -> &LhCluster {
        &self.cluster
    }

    /// Stops the cluster.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> SwpScheme {
        SwpScheme::new(&MasterKey::new([3; 16]))
    }

    #[test]
    fn word_found_in_stream() {
        let s = scheme();
        let stream = s.index_record(1, "SCHWARZ THOMAS J");
        let t = s.trapdoor("THOMAS");
        assert!(stream.iter().any(|c| SwpScheme::matches(c, &t)));
    }

    #[test]
    fn absent_word_not_found() {
        let s = scheme();
        let stream = s.index_record(1, "SCHWARZ THOMAS");
        let t = s.trapdoor("LITWIN");
        assert!(!stream.iter().any(|c| SwpScheme::matches(c, &t)));
    }

    #[test]
    fn substring_of_word_not_found_word_granularity() {
        // the limitation the ICDE'06 scheme overcomes
        let s = scheme();
        let stream = s.index_record(1, "SCHWARZ");
        for fragment in ["SCHWAR", "CHWARZ", "WAR"] {
            let t = s.trapdoor(fragment);
            assert!(
                !stream.iter().any(|c| SwpScheme::matches(c, &t)),
                "SWP must not find fragment {fragment:?}"
            );
        }
    }

    #[test]
    fn same_word_different_positions_encrypts_differently() {
        // the stream hides word-equality across positions (unlike ECB)
        let s = scheme();
        let stream = s.index_record(1, "YU YU");
        assert_ne!(stream[0], stream[1]);
        // but the trapdoor finds both
        let t = s.trapdoor("YU");
        assert!(SwpScheme::matches(&stream[0], &t));
        assert!(SwpScheme::matches(&stream[1], &t));
    }

    #[test]
    fn different_keys_do_not_cross_match() {
        let s1 = scheme();
        let s2 = SwpScheme::new(&MasterKey::new([4; 16]));
        let stream = s1.index_record(1, "THOMAS");
        let t = s2.trapdoor("THOMAS");
        assert!(!stream.iter().any(|c| SwpScheme::matches(c, &t)));
    }

    #[test]
    fn store_end_to_end() {
        let master = MasterKey::new([9; 16]);
        let store = SwpStore::start(&master, 16);
        store.insert(1, "SCHWARZ THOMAS").unwrap();
        store.insert(2, "LITWIN WITOLD").unwrap();
        store.insert(3, "TSUI PETER THOMAS").unwrap();
        let mut hits = store.search_word("THOMAS").unwrap();
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 3]);
        assert!(store.search_word("NOBODY").unwrap().is_empty());
        assert!(
            store.search_word("THOMA").unwrap().is_empty(),
            "word granularity"
        );
        store.shutdown();
    }
}
