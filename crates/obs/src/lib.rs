//! Workspace-wide observability: metrics, causal tracing, and a flight
//! recorder.
//!
//! Deliberately dependency-free so every crate in the workspace can link
//! it without cycles. Three pieces:
//!
//! * **Metrics** — named atomic [`Counter`]s, [`Gauge`]s,
//!   [`FloatGauge`]s, and fixed-bucket latency [`Histogram`]s, organized
//!   in [`Registry`] instances. The process-global default registry backs
//!   the [`counter`]/[`gauge`]/[`histogram`] free functions; per-site
//!   registries ([`Registry::with_parent`]) give each simulated site its
//!   own labeled counter set whose increments also propagate to the
//!   parent, so the default registry always holds the cross-site
//!   aggregate.
//! * **Tracing** — the [`trace`] module: a propagated
//!   [`trace::TraceContext`] per client operation, per-thread
//!   ring-buffer flight recorder, JSONL drain via [`trace::TraceSink`].
//! * **Snapshots** — [`MetricsSnapshot`] freezes a registry to JSON for
//!   `results/` sidecar artefacts; [`snapshot_reset`] captures and zeroes
//!   in one step so tests stop observing counters leaked by earlier
//!   tests.
//!
//! ```
//! sdds_obs::counter("demo.requests").inc();
//! let timer = sdds_obs::histogram("demo.latency_seconds").start_timer();
//! // ... do work ...
//! drop(timer);
//! let json = sdds_obs::MetricsSnapshot::capture().to_json();
//! assert!(json.contains("demo.requests"));
//! ```
//!
//! The legacy [`span`] free function is a no-op unless the `trace` cargo
//! feature is enabled, in which case it records into the flight recorder
//! (never stderr).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod trace;

/// A monotonically increasing event count. Increments propagate to the
/// same-named counter of the registry's parent (if any), so the default
/// registry aggregates across sites.
#[derive(Debug, Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
    parent: Option<Arc<Counter>>,
}

impl Counter {
    fn new(parent: Option<Counter>) -> Counter {
        Counter {
            value: Arc::new(AtomicU64::new(0)),
            parent: parent.map(Arc::new),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (here and, transitively, in the parent registry).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.add(n);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down. `set` propagates its *delta* to the
/// parent, so a parent gauge holds the sum of its children's values.
#[derive(Debug, Clone)]
pub struct Gauge {
    value: Arc<AtomicI64>,
    parent: Option<Arc<Gauge>>,
}

impl Gauge {
    fn new(parent: Option<Gauge>) -> Gauge {
        Gauge {
            value: Arc::new(AtomicI64::new(0)),
            parent: parent.map(Arc::new),
        }
    }

    /// Sets the value; the change (new − old) propagates to the parent.
    pub fn set(&self, v: i64) {
        let old = self.value.swap(v, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.add(v - old);
        }
    }

    /// Adds (possibly negative) `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.add(delta);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A floating-point gauge (f64 bits in an atomic), for statistics that
/// are not integer-valued — e.g. the leakage auditor's `leak.chi_square`
/// and `leak.top_ratio`. Plain last-write-wins; no parent propagation
/// (a chi-square of two sites does not sum).
#[derive(Debug, Clone)]
pub struct FloatGauge {
    bits: Arc<AtomicU64>,
}

impl FloatGauge {
    fn new() -> FloatGauge {
        FloatGauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Upper bounds (in seconds) of the fixed histogram buckets: exponential
/// from 1 µs to ~67 s, plus a +∞ overflow bucket. Chosen to straddle both
/// in-process pipeline stages (µs) and simulated network round trips (ms).
pub const BUCKET_BOUNDS: [f64; 27] = [
    1e-6, 2e-6, 4e-6, 8e-6, 16e-6, 32e-6, 64e-6, 128e-6, 256e-6, 512e-6, 1e-3, 2e-3, 4e-3, 8e-3,
    16e-3, 32e-3, 64e-3, 128e-3, 256e-3, 512e-3, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
];

/// A fixed-bucket histogram of seconds (atomic, lock-free on the record
/// path). `sum` is tracked in nanoseconds for lossless atomic addition.
#[derive(Debug, Default)]
pub struct HistogramInner {
    buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

/// Handle to a registered histogram. Observations propagate to the
/// same-named histogram of the registry's parent (if any).
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
    parent: Option<Arc<Histogram>>,
}

impl Histogram {
    fn new(parent: Option<Histogram>) -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner::default()),
            parent: parent.map(Arc::new),
        }
    }

    /// Records one observation of `seconds`.
    pub fn observe(&self, seconds: f64) {
        let seconds = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        let idx = BUCKET_BOUNDS.partition_point(|&b| b < seconds);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner
            .sum_nanos
            .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.observe(seconds);
        }
    }

    /// Records a [`std::time::Duration`].
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Starts a timer that records into this histogram when dropped.
    pub fn start_timer(&self) -> HistogramTimer {
        HistogramTimer {
            histogram: self.clone(),
            start: Instant::now(),
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in seconds.
    pub fn sum(&self) -> f64 {
        self.inner.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }
}

/// Guard recording elapsed time on drop.
pub struct HistogramTimer {
    histogram: Histogram,
    start: Instant,
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.histogram.observe_duration(self.start.elapsed());
    }
}

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

#[derive(Default)]
struct RegistryInner {
    label: String,
    parent: Option<Registry>,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    float_gauges: Mutex<BTreeMap<String, FloatGauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A named collection of metrics. The process-global *default* registry
/// ([`Registry::global`]) backs the [`counter`]/[`gauge`]/[`histogram`]
/// free functions; [`Registry::with_parent`] creates a labeled per-site
/// registry whose metric updates also flow into the parent, so the
/// default registry remains the cross-site aggregate while each site
/// keeps its own breakdown. [`Registry::new`] creates a standalone
/// scoped registry (no parent) for isolation in tests.
#[derive(Clone, Default)]
pub struct Registry(Arc<RegistryInner>);

fn site_registries() -> &'static Mutex<Vec<Registry>> {
    static SITES: OnceLock<Mutex<Vec<Registry>>> = OnceLock::new();
    SITES.get_or_init(|| Mutex::new(Vec::new()))
}

impl Registry {
    /// The process-global default registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            Registry(Arc::new(RegistryInner {
                label: "global".to_string(),
                ..RegistryInner::default()
            }))
        })
    }

    /// A standalone scoped registry: metrics registered here are
    /// invisible to (and unaffected by) every other registry.
    pub fn new(label: impl Into<String>) -> Registry {
        Registry(Arc::new(RegistryInner {
            label: label.into(),
            ..RegistryInner::default()
        }))
    }

    /// A labeled child registry (one per simulated site). Updates to its
    /// metrics propagate to the same-named metric of `parent`. The child
    /// is also remembered process-wide so [`capture_sites`] can list
    /// per-site snapshots.
    pub fn with_parent(label: impl Into<String>, parent: &Registry) -> Registry {
        let reg = Registry(Arc::new(RegistryInner {
            label: label.into(),
            parent: Some(parent.clone()),
            ..RegistryInner::default()
        }));
        site_registries()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(reg.clone());
        reg
    }

    /// The registry's label (`"global"` for the default registry).
    pub fn label(&self) -> &str {
        &self.0.label
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let parent = self.0.parent.as_ref().map(|p| p.counter(name));
        let mut map = self.0.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Counter::new(parent))
            .clone()
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let parent = self.0.parent.as_ref().map(|p| p.gauge(name));
        let mut map = self.0.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Gauge::new(parent))
            .clone()
    }

    /// The float gauge registered under `name` (created on first use).
    pub fn float_gauge(&self, name: &str) -> FloatGauge {
        let mut map = self
            .0
            .float_gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(FloatGauge::new)
            .clone()
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        let parent = self.0.parent.as_ref().map(|p| p.histogram(name));
        let mut map = self.0.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Histogram::new(parent))
            .clone()
    }

    /// Zeroes every metric in *this* registry (handles stay valid).
    /// Children are untouched; a parent *gauge* receives the negated old
    /// value, preserving its sum-of-children invariant (counters are
    /// cumulative, so their parents deliberately keep the history).
    pub fn reset_values(&self) {
        for c in self
            .0
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            c.value.store(0, Ordering::Relaxed);
        }
        for g in self
            .0
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            // One atomic exchange per gauge, not a raw store: a raw store
            // would discard any concurrent add() between read and write,
            // and — worse — leave the old value counted in the parent
            // forever. swap captures exactly the amount this gauge held,
            // and propagating its negation keeps parent == Σ children.
            let old = g.value.swap(0, Ordering::Relaxed);
            if let Some(p) = &g.parent {
                p.add(-old);
            }
        }
        for f in self
            .0
            .float_gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            f.set(0.0);
        }
        for h in self
            .0
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            for b in &h.inner.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.inner.count.store(0, Ordering::Relaxed);
            h.inner.sum_nanos.store(0, Ordering::Relaxed);
        }
    }

    /// Freezes this registry's current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .0
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .0
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let float_gauges = self
            .0
            .float_gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .0
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: h.count(),
                        sum_seconds: h.sum(),
                        buckets: h
                            .inner
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            label: self.0.label.clone(),
            counters,
            gauges,
            float_gauges,
            histograms,
        }
    }
}

/// The counter registered under `name` in the default registry.
pub fn counter(name: &str) -> Counter {
    Registry::global().counter(name)
}

/// The gauge registered under `name` in the default registry.
pub fn gauge(name: &str) -> Gauge {
    Registry::global().gauge(name)
}

/// The float gauge registered under `name` in the default registry.
pub fn float_gauge(name: &str) -> FloatGauge {
    Registry::global().float_gauge(name)
}

/// The histogram registered under `name` in the default registry.
pub fn histogram(name: &str) -> Histogram {
    Registry::global().histogram(name)
}

/// Zeroes every registered metric in the default registry *and* every
/// per-site child registry (benches measure per-phase deltas by resetting
/// between phases; resetting both keeps the aggregate equal to the sum of
/// the sites). Handles stay valid.
pub fn reset() {
    // Sites first: each child gauge reset propagates its negated value
    // into the global aggregate, so by the time the global registry is
    // zeroed it holds only direct (non-site) contributions. The reverse
    // order re-corrupts the aggregate — the children's values flow back
    // into freshly-zeroed parents as negative residue.
    for site in site_registries()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
    {
        site.reset_values();
    }
    Registry::global().reset_values();
}

/// Captures the default registry, then zeroes it (and the per-site
/// children) — one step, so integration tests can assert on exactly the
/// metrics their own operations produced without observing counters
/// leaked by earlier tests in the same process.
pub fn snapshot_reset() -> MetricsSnapshot {
    let snap = MetricsSnapshot::capture();
    reset();
    snap
}

/// Point-in-time snapshots of every registered per-site registry, in
/// creation order, each labeled with its site.
pub fn capture_sites() -> Vec<MetricsSnapshot> {
    site_registries()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|r| r.snapshot())
        .collect()
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Label of the registry this snapshot was taken from.
    pub label: String,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Float gauge values by name.
    pub float_gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Frozen histogram contents.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of observations in seconds.
    pub sum_seconds: f64,
    /// Per-bucket counts; entry `i` counts observations ≤
    /// [`BUCKET_BOUNDS`]`[i]`, with one final overflow bucket.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Approximate quantile (0.0–1.0) from the bucket bounds; `None` when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Some(*BUCKET_BOUNDS.get(i).unwrap_or(&f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }

    /// Mean observation in seconds (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_seconds / self.count as f64)
    }
}

impl MetricsSnapshot {
    /// Captures the current state of the default registry.
    pub fn capture() -> MetricsSnapshot {
        Registry::global().snapshot()
    }

    /// Serializes to a self-contained JSON document (see
    /// `docs/PROTOCOL.md` for the schema).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!("{{\n  \"label\": {},", quote(&self.label)));
        out.push_str("\n  \"counters\": {");
        join(&mut out, self.counters.iter(), |out, (k, v)| {
            out.push_str(&format!("\n    {}: {v}", quote(k)));
        });
        out.push_str("\n  },\n  \"gauges\": {");
        join(&mut out, self.gauges.iter(), |out, (k, v)| {
            out.push_str(&format!("\n    {}: {v}", quote(k)));
        });
        out.push_str("\n  },\n  \"float_gauges\": {");
        join(&mut out, self.float_gauges.iter(), |out, (k, v)| {
            out.push_str(&format!("\n    {}: {}", quote(k), fmt_f64(*v)));
        });
        out.push_str("\n  },\n  \"histograms\": {");
        join(&mut out, self.histograms.iter(), |out, (k, h)| {
            out.push_str(&format!(
                "\n    {}: {{ \"count\": {}, \"sum_seconds\": {}, \"mean_seconds\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [{}] }}",
                quote(k),
                h.count,
                fmt_f64(h.sum_seconds),
                h.mean().map_or("null".into(), fmt_f64),
                h.quantile(0.50).map_or("null".into(), fmt_f64),
                h.quantile(0.95).map_or("null".into(), fmt_f64),
                h.quantile(0.99).map_or("null".into(), fmt_f64),
                h.quantile(0.999).map_or("null".into(), fmt_f64),
                h.buckets
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            ));
        });
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses a document produced by [`MetricsSnapshot::to_json`] back
    /// into a snapshot — the inverse used by the cluster scrape path,
    /// where each rank ships its registry as JSON over the control
    /// channel. Derived histogram fields (`mean_seconds`, `p50`, …) are
    /// ignored on input; they are recomputed from the buckets. Returns
    /// `None` on malformed input.
    pub fn from_json(text: &str) -> Option<MetricsSnapshot> {
        let value = json::parse(text)?;
        let top = value.as_object()?;
        let mut snap = MetricsSnapshot {
            label: top.get("label")?.as_str()?.to_string(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            float_gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        for (k, v) in top.get("counters")?.as_object()? {
            snap.counters.insert(k.clone(), v.as_f64()? as u64);
        }
        for (k, v) in top.get("gauges")?.as_object()? {
            snap.gauges.insert(k.clone(), v.as_f64()? as i64);
        }
        for (k, v) in top.get("float_gauges")?.as_object()? {
            // to_json writes non-finite values as null; read them back as 0
            snap.float_gauges
                .insert(k.clone(), v.as_f64().unwrap_or(0.0));
        }
        for (k, v) in top.get("histograms")?.as_object()? {
            let h = v.as_object()?;
            snap.histograms.insert(
                k.clone(),
                HistogramSnapshot {
                    count: h.get("count")?.as_f64()? as u64,
                    sum_seconds: h.get("sum_seconds")?.as_f64()?,
                    buckets: h
                        .get("buckets")?
                        .as_array()?
                        .iter()
                        .map(|b| b.as_f64().map(|f| f as u64))
                        .collect::<Option<Vec<u64>>>()?,
                },
            );
        }
        Some(snap)
    }

    /// Merges per-rank snapshots into one cluster-wide aggregate labeled
    /// `label`. Counters and gauges sum (gauges already obey parent =
    /// Σ children semantics inside each process, so summing across ranks
    /// extends the same invariant); histograms merge element-wise
    /// (buckets, count, sum). Float gauges are deliberately *excluded* —
    /// a chi-square of two ranks does not sum; read them from the
    /// per-rank snapshots instead.
    pub fn merge(label: impl Into<String>, parts: &[MetricsSnapshot]) -> MetricsSnapshot {
        let mut out = MetricsSnapshot {
            label: label.into(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            float_gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        for part in parts {
            for (k, v) in &part.counters {
                *out.counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, v) in &part.gauges {
                *out.gauges.entry(k.clone()).or_insert(0) += v;
            }
            for (k, h) in &part.histograms {
                let agg = out
                    .histograms
                    .entry(k.clone())
                    .or_insert_with(|| HistogramSnapshot {
                        count: 0,
                        sum_seconds: 0.0,
                        buckets: vec![0; h.buckets.len()],
                    });
                agg.count += h.count;
                agg.sum_seconds += h.sum_seconds;
                if agg.buckets.len() < h.buckets.len() {
                    agg.buckets.resize(h.buckets.len(), 0);
                }
                for (slot, add) in agg.buckets.iter_mut().zip(&h.buckets) {
                    *slot += add;
                }
            }
        }
        out
    }
}

/// Minimal recursive-descent JSON reader for the snapshot schema —
/// dependency-free like the rest of the crate. Accepts any valid JSON
/// document; only the shapes `to_json` emits are mapped onto snapshots.
mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Option<Value> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn eat(bytes: &[u8], pos: &mut usize, b: u8) -> Option<()> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b'{' => parse_object(bytes, pos),
            b'[' => parse_array(bytes, pos),
            b'"' => parse_string(bytes, pos).map(Value::String),
            b't' => parse_lit(bytes, pos, b"true", Value::Bool(true)),
            b'f' => parse_lit(bytes, pos, b"false", Value::Bool(false)),
            b'n' => parse_lit(bytes, pos, b"null", Value::Null),
            _ => parse_number(bytes, pos),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Value) -> Option<Value> {
        if bytes[*pos..].starts_with(lit) {
            *pos += lit.len();
            Some(value)
        } else {
            None
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()?
            .parse()
            .ok()
            .map(Value::Number)
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
        eat(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos)? {
                b'"' => {
                    *pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    *pos += 1;
                    match bytes.get(*pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = bytes.get(*pos + 1..*pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            *pos += 4;
                        }
                        _ => return None,
                    }
                    *pos += 1;
                }
                _ => {
                    // copy the raw UTF-8 run up to the next quote/escape
                    let start = *pos;
                    while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                        *pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&bytes[start..*pos]).ok()?);
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        eat(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Some(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos)? {
                b',' => *pos += 1,
                b']' => {
                    *pos += 1;
                    return Some(Value::Array(items));
                }
                _ => return None,
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        eat(bytes, pos, b'{')?;
        let mut map = BTreeMap::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Some(Value::Object(map));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            eat(bytes, pos, b':')?;
            map.insert(key, parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos)? {
                b',' => *pos += 1,
                b'}' => {
                    *pos += 1;
                    return Some(Value::Object(map));
                }
                _ => return None,
            }
        }
    }
}

fn join<I: Iterator, F: FnMut(&mut String, I::Item)>(out: &mut String, items: I, mut f: F) {
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        f(out, item);
    }
}

pub(crate) fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".into();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

// ---------------------------------------------------------------------------
// Legacy tracing spans
// ---------------------------------------------------------------------------

/// A tracing span guard; see [`span`].
pub struct Span {
    #[cfg(feature = "trace")]
    _guard: trace::SpanGuard,
}

/// Opens a span. With the `trace` cargo feature enabled this records a
/// child span into the flight recorder (see [`trace`]); otherwise it
/// compiles to a no-op. The structured API in [`trace`] is preferred for
/// new instrumentation — this entry point exists so pre-existing
/// `span("...")` call sites keep working.
pub fn span(name: &'static str) -> Span {
    #[cfg(feature = "trace")]
    {
        Span {
            _guard: trace::child_span(name),
        }
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = name;
        Span {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_accumulate() {
        let c = counter("test.obs.counter");
        c.inc();
        c.add(4);
        assert_eq!(counter("test.obs.counter").get(), 5);
        let g = gauge("test.obs.gauge");
        g.set(7);
        g.add(-2);
        assert_eq!(gauge("test.obs.gauge").get(), 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = histogram("test.obs.hist");
        h.observe(3e-6); // bucket le=4e-6
        h.observe(3e-6);
        h.observe(1.5); // bucket le=2.0
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 1.500006).abs() < 1e-6);
        let snap = MetricsSnapshot::capture();
        let hs = &snap.histograms["test.obs.hist"];
        assert_eq!(hs.count, 3);
        assert_eq!(hs.quantile(0.5), Some(4e-6));
        assert_eq!(hs.quantile(0.99), Some(2.0));
        assert_eq!(hs.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn timer_records_on_drop() {
        let h = histogram("test.obs.timer");
        let before = h.count();
        drop(h.start_timer());
        assert_eq!(h.count(), before + 1);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        counter("test.obs.json").add(2);
        histogram("test.obs.json_hist").observe(0.001);
        float_gauge("test.obs.fgauge").set(1.25);
        let json = MetricsSnapshot::capture().to_json();
        assert!(json.contains("\"test.obs.json\": 2"));
        assert!(json.contains("\"test.obs.json_hist\""));
        assert!(json.contains("\"test.obs.fgauge\": 1.25"));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"float_gauges\""));
        // crude structural sanity: balanced braces
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn snapshot_json_round_trips_and_merges() {
        let reg = Registry::new("rank-0");
        reg.counter("rt.requests").add(7);
        reg.gauge("rt.depth").set(3);
        reg.float_gauge("rt.chi").set(2.5);
        reg.histogram("rt.lat").observe(0.001);
        reg.histogram("rt.lat").observe(0.004);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"p999\""), "snapshots expose p999: {json}");
        let back = MetricsSnapshot::from_json(&json).expect("own output parses");
        assert_eq!(back.label, "rank-0");
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.float_gauges, snap.float_gauges);
        assert_eq!(back.histograms["rt.lat"].count, 2);
        assert_eq!(
            back.histograms["rt.lat"].buckets,
            snap.histograms["rt.lat"].buckets
        );
        assert!(
            (back.histograms["rt.lat"].sum_seconds - snap.histograms["rt.lat"].sum_seconds).abs()
                < 1e-9
        );
        assert!(MetricsSnapshot::from_json("{oops").is_none());
        assert!(MetricsSnapshot::from_json("[1,2]").is_none());

        let other = Registry::new("rank-1");
        other.counter("rt.requests").add(5);
        other.gauge("rt.depth").set(2);
        other.float_gauge("rt.chi").set(9.0);
        other.histogram("rt.lat").observe(0.002);
        let merged = MetricsSnapshot::merge("cluster", &[snap, other.snapshot()]);
        assert_eq!(merged.label, "cluster");
        assert_eq!(merged.counters["rt.requests"], 12);
        assert_eq!(merged.gauges["rt.depth"], 5);
        assert_eq!(merged.histograms["rt.lat"].count, 3);
        assert_eq!(
            merged.histograms["rt.lat"].buckets.iter().sum::<u64>(),
            3,
            "bucket counts merge element-wise"
        );
        assert!(
            merged.float_gauges.is_empty(),
            "float gauges do not sum across ranks"
        );
    }

    #[test]
    fn span_guard_is_usable() {
        let _s = span("test.obs.span");
    }

    #[test]
    fn per_site_registry_propagates_to_parent() {
        let parent = Registry::new("parent");
        let site_a = Registry::with_parent("site-a", &parent);
        let site_b = Registry::with_parent("site-b", &parent);
        site_a.counter("reg.test.ops").add(3);
        site_b.counter("reg.test.ops").add(4);
        assert_eq!(site_a.counter("reg.test.ops").get(), 3);
        assert_eq!(site_b.counter("reg.test.ops").get(), 4);
        assert_eq!(parent.counter("reg.test.ops").get(), 7);

        // Gauges: parent is the sum of child values, tracked by delta.
        site_a.gauge("reg.test.load").set(10);
        site_b.gauge("reg.test.load").set(5);
        site_a.gauge("reg.test.load").set(2);
        assert_eq!(parent.gauge("reg.test.load").get(), 7);

        // Histograms: observations land in both.
        site_a.histogram("reg.test.lat").observe(0.001);
        site_b.histogram("reg.test.lat").observe(0.002);
        assert_eq!(parent.histogram("reg.test.lat").count(), 2);
    }

    #[test]
    fn child_gauge_reset_propagates_to_parent() {
        let parent = Registry::new("reset-parent");
        let site_a = Registry::with_parent("reset-a", &parent);
        let site_b = Registry::with_parent("reset-b", &parent);
        site_a.gauge("reg.reset.load").set(10);
        site_b.gauge("reg.reset.load").set(5);
        assert_eq!(parent.gauge("reg.reset.load").get(), 15);
        site_a.reset_values();
        // the old raw-store reset left a's 10 in the parent forever
        assert_eq!(parent.gauge("reg.reset.load").get(), 5);
        assert_eq!(site_a.gauge("reg.reset.load").get(), 0);
        site_a.gauge("reg.reset.load").set(3);
        assert_eq!(parent.gauge("reg.reset.load").get(), 8);
    }

    #[test]
    fn gauge_reset_is_atomic_under_concurrent_adds() {
        let parent = Registry::new("race-parent");
        let site = Registry::with_parent("race-site", &parent);
        // touch the gauge so both registries hold the instrument
        site.gauge("reg.race.g").set(0);
        let adder = {
            let site = site.clone();
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    site.gauge("reg.race.g").add(1);
                }
            })
        };
        for _ in 0..1_000 {
            site.reset_values();
        }
        adder.join().unwrap();
        site.reset_values();
        // Quiescent invariant: every add was either wiped by a reset (and
        // then subtracted from the parent) or survives in the child; after
        // a final reset both must read zero. The old raw-store reset
        // leaked child values into the parent permanently.
        assert_eq!(site.gauge("reg.race.g").get(), 0);
        assert_eq!(parent.gauge("reg.race.g").get(), 0);
    }

    #[test]
    fn scoped_registry_is_isolated() {
        let scoped = Registry::new("scoped");
        scoped.counter("reg.test.isolated").add(9);
        assert_eq!(scoped.counter("reg.test.isolated").get(), 9);
        // The default registry never saw it.
        assert!(!MetricsSnapshot::capture()
            .counters
            .contains_key("reg.test.isolated"));
        // And scoped snapshots carry their label.
        assert_eq!(scoped.snapshot().label, "scoped");
    }
}
