//! Workspace-wide observability: metrics and (optional) tracing.
//!
//! Deliberately dependency-free so every crate in the workspace can link
//! it without cycles: a process-global registry of named atomic
//! [`Counter`]s, [`Gauge`]s, and fixed-bucket latency [`Histogram`]s, plus
//! a [`MetricsSnapshot`] that serializes the whole registry to JSON for
//! `results/` sidecar artefacts.
//!
//! ```
//! sdds_obs::counter("demo.requests").inc();
//! let timer = sdds_obs::histogram("demo.latency_seconds").start_timer();
//! // ... do work ...
//! drop(timer);
//! let json = sdds_obs::MetricsSnapshot::capture().to_json();
//! assert!(json.contains("demo.requests"));
//! ```
//!
//! Tracing spans ([`span`]) are compiled to no-ops unless the `trace`
//! cargo feature is enabled, in which case enter/exit lines with
//! wall-clock durations go to stderr.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (in seconds) of the fixed histogram buckets: exponential
/// from 1 µs to ~67 s, plus a +∞ overflow bucket. Chosen to straddle both
/// in-process pipeline stages (µs) and simulated network round trips (ms).
pub const BUCKET_BOUNDS: [f64; 27] = [
    1e-6, 2e-6, 4e-6, 8e-6, 16e-6, 32e-6, 64e-6, 128e-6, 256e-6, 512e-6, 1e-3, 2e-3, 4e-3, 8e-3,
    16e-3, 32e-3, 64e-3, 128e-3, 256e-3, 512e-3, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
];

/// A fixed-bucket histogram of seconds (atomic, lock-free on the record
/// path). `sum` is tracked in nanoseconds for lossless atomic addition.
#[derive(Debug, Default)]
pub struct HistogramInner {
    buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

/// Handle to a registered histogram.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation of `seconds`.
    pub fn observe(&self, seconds: f64) {
        let seconds = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        let idx = BUCKET_BOUNDS.partition_point(|&b| b < seconds);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0
            .sum_nanos
            .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`].
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Starts a timer that records into this histogram when dropped.
    pub fn start_timer(&self) -> HistogramTimer {
        HistogramTimer {
            histogram: self.clone(),
            start: Instant::now(),
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in seconds.
    pub fn sum(&self) -> f64 {
        self.0.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }
}

/// Guard recording elapsed time on drop.
pub struct HistogramTimer {
    histogram: Histogram,
    start: Instant,
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.histogram.observe_duration(self.start.elapsed());
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter registered under `name` (created on first use).
pub fn counter(name: &str) -> Counter {
    let mut map = registry()
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    map.entry(name.to_string())
        .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
        .clone()
}

/// The gauge registered under `name` (created on first use).
pub fn gauge(name: &str) -> Gauge {
    let mut map = registry().gauges.lock().unwrap_or_else(|e| e.into_inner());
    map.entry(name.to_string())
        .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
        .clone()
}

/// The histogram registered under `name` (created on first use).
pub fn histogram(name: &str) -> Histogram {
    let mut map = registry()
        .histograms
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    map.entry(name.to_string())
        .or_insert_with(|| Histogram(Arc::new(HistogramInner::default())))
        .clone()
}

/// Zeroes every registered metric (benches measure per-phase deltas by
/// resetting between phases). Handles stay valid.
pub fn reset() {
    let reg = registry();
    for c in reg
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
    {
        c.0.store(0, Ordering::Relaxed);
    }
    for g in reg
        .gauges
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
    {
        g.0.store(0, Ordering::Relaxed);
    }
    for h in reg
        .histograms
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
    {
        for b in &h.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.0.count.store(0, Ordering::Relaxed);
        h.0.sum_nanos.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Frozen histogram contents.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of observations in seconds.
    pub sum_seconds: f64,
    /// Per-bucket counts; entry `i` counts observations ≤
    /// [`BUCKET_BOUNDS`]`[i]`, with one final overflow bucket.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Approximate quantile (0.0–1.0) from the bucket bounds; `None` when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Some(*BUCKET_BOUNDS.get(i).unwrap_or(&f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }

    /// Mean observation in seconds (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_seconds / self.count as f64)
    }
}

impl MetricsSnapshot {
    /// Captures the current state of the global registry.
    pub fn capture() -> MetricsSnapshot {
        let reg = registry();
        let counters = reg
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = reg
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = reg
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: h.count(),
                        sum_seconds: h.sum(),
                        buckets: h
                            .0
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Serializes to a self-contained JSON document (see
    /// `docs/PROTOCOL.md` for the schema).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": {");
        join(&mut out, self.counters.iter(), |out, (k, v)| {
            out.push_str(&format!("\n    {}: {v}", quote(k)));
        });
        out.push_str("\n  },\n  \"gauges\": {");
        join(&mut out, self.gauges.iter(), |out, (k, v)| {
            out.push_str(&format!("\n    {}: {v}", quote(k)));
        });
        out.push_str("\n  },\n  \"histograms\": {");
        join(&mut out, self.histograms.iter(), |out, (k, h)| {
            out.push_str(&format!(
                "\n    {}: {{ \"count\": {}, \"sum_seconds\": {}, \"mean_seconds\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [{}] }}",
                quote(k),
                h.count,
                fmt_f64(h.sum_seconds),
                h.mean().map_or("null".into(), fmt_f64),
                h.quantile(0.50).map_or("null".into(), fmt_f64),
                h.quantile(0.99).map_or("null".into(), fmt_f64),
                h.buckets
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            ));
        });
        out.push_str("\n  }\n}\n");
        out
    }
}

fn join<I: Iterator, F: FnMut(&mut String, I::Item)>(out: &mut String, items: I, mut f: F) {
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        f(out, item);
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".into();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

// ---------------------------------------------------------------------------
// Tracing spans
// ---------------------------------------------------------------------------

/// A tracing span guard; see [`span`].
pub struct Span {
    #[cfg(feature = "trace")]
    name: &'static str,
    #[cfg(feature = "trace")]
    start: Instant,
}

/// Opens a span. With the `trace` feature enabled, prints
/// `trace: enter <name>` now and `trace: exit <name> (<elapsed>)` when the
/// guard drops; otherwise compiles to a no-op.
pub fn span(name: &'static str) -> Span {
    #[cfg(feature = "trace")]
    {
        eprintln!("trace: enter {name}");
        Span {
            name,
            start: Instant::now(),
        }
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = name;
        Span {}
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "trace")]
        eprintln!("trace: exit {} ({:?})", self.name, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_accumulate() {
        let c = counter("test.obs.counter");
        c.inc();
        c.add(4);
        assert_eq!(counter("test.obs.counter").get(), 5);
        let g = gauge("test.obs.gauge");
        g.set(7);
        g.add(-2);
        assert_eq!(gauge("test.obs.gauge").get(), 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = histogram("test.obs.hist");
        h.observe(3e-6); // bucket le=4e-6
        h.observe(3e-6);
        h.observe(1.5); // bucket le=2.0
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 1.500006).abs() < 1e-6);
        let snap = MetricsSnapshot::capture();
        let hs = &snap.histograms["test.obs.hist"];
        assert_eq!(hs.count, 3);
        assert_eq!(hs.quantile(0.5), Some(4e-6));
        assert_eq!(hs.quantile(0.99), Some(2.0));
        assert_eq!(hs.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn timer_records_on_drop() {
        let h = histogram("test.obs.timer");
        let before = h.count();
        drop(h.start_timer());
        assert_eq!(h.count(), before + 1);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        counter("test.obs.json").add(2);
        histogram("test.obs.json_hist").observe(0.001);
        let json = MetricsSnapshot::capture().to_json();
        assert!(json.contains("\"test.obs.json\": 2"));
        assert!(json.contains("\"test.obs.json_hist\""));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
        // crude structural sanity: balanced braces
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn span_guard_is_usable() {
        let _s = span("test.obs.span");
    }
}
