//! Causal distributed tracing with a per-thread ring-buffer flight
//! recorder.
//!
//! A [`TraceContext`] is minted per client operation and propagated on
//! every network envelope; each site opens a child span via
//! [`remote_span`] so one logical operation yields a span *tree* that
//! crosses thread (site) boundaries. Completed spans are [`SpanRecord`]s
//! — all-`Copy`, `&'static str` names — pushed into a fixed-capacity
//! per-thread ring buffer (overwrite-oldest, zero steady-state
//! allocation). [`drain_spans`] or a [`TraceSink`] collects every
//! thread's ring into one chronologically sorted JSONL stream.
//!
//! Recording is gated by a runtime flag ([`set_tracing`]); the default is
//! off, so instrumented code costs one relaxed atomic load per span when
//! tracing is disabled. Building with the `trace` cargo feature flips the
//! default to on.
//!
//! ```
//! use sdds_obs::trace;
//!
//! trace::set_tracing(true);
//! let root = trace::root_span("client.search");
//! let ctx = root.context(); // propagate on the wire
//! {
//!     let mut child = trace::remote_span("bucket.scan", ctx);
//!     child.set_site(3);
//! }
//! drop(root);
//! let spans = trace::drain_spans();
//! assert_eq!(spans.len(), 2);
//! trace::set_tracing(false);
//! ```

use std::cell::RefCell;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-operation causal context carried on every network envelope.
///
/// `trace_id` names the whole operation; `parent_span_id` is the span the
/// next hop should parent its own span under. The wire format is two
/// unsigned 64-bit integers (see `docs/PROTOCOL.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identifier shared by every span of one client operation.
    pub trace_id: u64,
    /// Span id of the sender-side span that caused this message.
    pub parent_span_id: u64,
}

/// One completed span. All fields are `Copy` (the name is a `&'static
/// str`) so pushing a record into the flight recorder never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Identifier shared by every span of one client operation.
    pub trace_id: u64,
    /// Unique (per process) identifier of this span; never 0.
    pub span_id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent_span_id: u64,
    /// Static span name, e.g. `client.search` or `bucket.scan`.
    pub name: &'static str,
    /// Site (bucket address or site id) that executed the span; -1 for
    /// client-side spans.
    pub site: i64,
    /// Span-specific payload (hop count, candidate count, bucket address,
    /// …) — never key material.
    pub detail: u64,
    /// Span start, nanoseconds since the process trace epoch.
    pub start_nanos: u64,
    /// Span duration in nanoseconds (0 for instantaneous events).
    pub duration_nanos: u64,
}

// ---------------------------------------------------------------------------
// Runtime gate, ids, epoch
// ---------------------------------------------------------------------------

fn enabled_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    // The `trace` cargo feature flips the *default* to on; set_tracing
    // still overrides at runtime either way.
    FLAG.get_or_init(|| AtomicBool::new(cfg!(feature = "trace")))
}

/// Turns span recording on or off process-wide.
pub fn set_tracing(on: bool) {
    // ordering: Relaxed — the flag is an independent on/off switch; no
    // other memory accesses are published through it.
    enabled_flag().store(on, Ordering::Relaxed);
}

/// Whether spans are currently being recorded.
pub fn tracing_enabled() -> bool {
    // ordering: Relaxed — see set_tracing.
    enabled_flag().load(Ordering::Relaxed)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Unique nonzero span id: a process-wide counter seeded from a random
/// per-process base. The base matters for *cluster* traces — every rank
/// stitches its spans into one tree keyed by `trace_id`, and if each
/// process counted from 1, rank 0's span 3 and rank 2's span 3 would be
/// indistinguishable and parent links would cross-wire. Mixing the pid
/// and wall clock through splitmix64 makes the per-process id ranges
/// disjoint with overwhelming probability.
fn next_span_id() -> u64 {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    let counter = NEXT.get_or_init(|| {
        let pid = std::process::id() as u64;
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        AtomicU64::new(splitmix64(pid ^ nanos.rotate_left(17)))
    });
    loop {
        // ordering: Relaxed — fetch_add alone guarantees uniqueness; ids
        // carry no happens-before obligations.
        let id = counter.fetch_add(1, Ordering::Relaxed);
        if id != 0 {
            return id;
        }
    }
}

/// Unique nonzero trace id (splitmix64 of a counter, so concurrent
/// operations get visually distinct ids).
fn next_trace_id() -> u64 {
    loop {
        let id = splitmix64(next_span_id());
        if id != 0 {
            return id;
        }
    }
}

/// Process trace epoch: `start_nanos` is measured from the first use.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Flight recorder: per-thread rings
// ---------------------------------------------------------------------------

/// Default per-thread ring capacity (spans).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

fn ring_capacity() -> &'static AtomicUsize {
    static CAP: OnceLock<AtomicUsize> = OnceLock::new();
    CAP.get_or_init(|| AtomicUsize::new(DEFAULT_RING_CAPACITY))
}

/// Sets the capacity used by rings created *after* this call (each thread
/// allocates its ring on first span). Clamped to at least 2. Existing
/// rings keep their capacity.
pub fn set_ring_capacity(spans: usize) {
    // ordering: Relaxed — capacity is advisory configuration read once
    // per thread at ring creation.
    ring_capacity().store(spans.max(2), Ordering::Relaxed);
}

/// Fixed-capacity overwrite-oldest span buffer. `slots` is preallocated
/// to capacity once; after the first wrap `next` is the oldest slot.
struct Ring {
    slots: Vec<SpanRecord>,
    next: usize,
}

impl Ring {
    fn with_capacity(cap: usize) -> Ring {
        Ring {
            slots: Vec::with_capacity(cap),
            next: 0,
        }
    }

    fn push(&mut self, rec: SpanRecord) {
        if self.slots.len() < self.slots.capacity() {
            self.slots.push(rec);
        } else {
            self.slots[self.next] = rec;
            self.next = (self.next + 1) % self.slots.len();
        }
    }

    /// Oldest-to-newest drain; leaves the ring empty.
    fn drain_into(&mut self, out: &mut Vec<SpanRecord>) {
        out.extend_from_slice(&self.slots[self.next..]);
        out.extend_from_slice(&self.slots[..self.next]);
        self.slots.clear();
        self.next = 0;
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

fn record(rec: SpanRecord) {
    LOCAL_RING.with(|cell| {
        let mut local = cell.borrow_mut();
        let ring = local.get_or_insert_with(|| {
            // ordering: Relaxed — see set_ring_capacity.
            let cap = ring_capacity().load(Ordering::Relaxed);
            let ring = Arc::new(Mutex::new(Ring::with_capacity(cap)));
            rings()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&ring));
            ring
        });
        // Uncontended in steady state: only drains from other threads
        // ever touch this lock.
        ring.lock().unwrap_or_else(|e| e.into_inner()).push(rec);
    });
}

/// Collects (and clears) every thread's ring, sorted by `start_nanos`.
pub fn drain_spans() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for ring in rings().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        ring.lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain_into(&mut out);
    }
    out.sort_by_key(|r| (r.start_nanos, r.span_id));
    out
}

// ---------------------------------------------------------------------------
// Span guards
// ---------------------------------------------------------------------------

struct OpenSpan {
    trace_id: u64,
    span_id: u64,
    parent_span_id: u64,
    name: &'static str,
    site: i64,
    detail: u64,
    start: Instant,
    start_nanos: u64,
}

/// RAII guard for an open span; records a [`SpanRecord`] on drop. Inert
/// (records nothing, `context()` is `None`) when tracing is disabled or
/// the guard came from [`remote_span`] with no incoming context.
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

impl SpanGuard {
    fn open(name: &'static str, trace_id: u64, parent_span_id: u64) -> SpanGuard {
        let span_id = next_span_id();
        SPAN_STACK.with(|s| s.borrow_mut().push((trace_id, span_id)));
        SpanGuard {
            inner: Some(OpenSpan {
                trace_id,
                span_id,
                parent_span_id,
                name,
                site: -1,
                detail: 0,
                start: Instant::now(),
                start_nanos: now_nanos(),
            }),
        }
    }

    fn inert() -> SpanGuard {
        SpanGuard { inner: None }
    }

    /// The context a child (next hop, spawned work) should parent under,
    /// or `None` when this guard is inert.
    pub fn context(&self) -> Option<TraceContext> {
        self.inner.as_ref().map(|s| TraceContext {
            trace_id: s.trace_id,
            parent_span_id: s.span_id,
        })
    }

    /// Whether this guard will record a span on drop.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Tags the span with the executing site (bucket address / site id).
    pub fn set_site(&mut self, site: i64) {
        if let Some(s) = &mut self.inner {
            s.site = site;
        }
    }

    /// Tags the span with a numeric payload (hops, candidates, …).
    pub fn set_detail(&mut self, detail: u64) {
        if let Some(s) = &mut self.inner {
            s.detail = detail;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.inner.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards are scoped, so the top of the stack is ours; be
            // defensive anyway and remove by span id.
            if let Some(pos) = stack.iter().rposition(|&(_, id)| id == s.span_id) {
                stack.remove(pos);
            }
        });
        record(SpanRecord {
            trace_id: s.trace_id,
            span_id: s.span_id,
            parent_span_id: s.parent_span_id,
            name: s.name,
            site: s.site,
            detail: s.detail,
            start_nanos: s.start_nanos,
            duration_nanos: s.start.elapsed().as_nanos() as u64,
        });
    }
}

/// The context a child of the innermost open span on this thread should
/// use, or `None` when no span is open (or tracing is off).
pub fn current_context() -> Option<TraceContext> {
    if !tracing_enabled() {
        return None;
    }
    SPAN_STACK.with(|s| {
        s.borrow().last().map(|&(trace_id, span_id)| TraceContext {
            trace_id,
            parent_span_id: span_id,
        })
    })
}

/// Opens a root span: a fresh trace id, no parent. One per client
/// operation (insert / search / delete / recover).
pub fn root_span(name: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard::inert();
    }
    SpanGuard::open(name, next_trace_id(), 0)
}

/// Opens a span parented under the innermost open span on this thread;
/// starts a new trace when none is open. Use for same-thread children
/// (client-side phases of one operation).
pub fn child_span(name: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard::inert();
    }
    match current_context() {
        Some(ctx) => SpanGuard::open(name, ctx.trace_id, ctx.parent_span_id),
        None => SpanGuard::open(name, next_trace_id(), 0),
    }
}

/// Opens a span parented under a context received from another site.
/// Inert when `ctx` is `None` (untraced message) — internal chatter never
/// fabricates orphan roots.
pub fn remote_span(name: &'static str, ctx: Option<TraceContext>) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard::inert();
    }
    match ctx {
        Some(ctx) => SpanGuard::open(name, ctx.trace_id, ctx.parent_span_id),
        None => SpanGuard::inert(),
    }
}

/// Records an instantaneous event (zero-duration span) under `ctx` — used
/// for things with no extent, e.g. a simulated network drop.
pub fn event(name: &'static str, ctx: TraceContext, site: i64, detail: u64) {
    if !tracing_enabled() {
        return;
    }
    record(SpanRecord {
        trace_id: ctx.trace_id,
        span_id: next_span_id(),
        parent_span_id: ctx.parent_span_id,
        name,
        site,
        detail,
        start_nanos: now_nanos(),
        duration_nanos: 0,
    });
}

// ---------------------------------------------------------------------------
// JSONL serialization
// ---------------------------------------------------------------------------

impl SpanRecord {
    /// One JSON object, no trailing newline.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"trace_id\":{},\"span_id\":{},\"parent_span_id\":{},\"name\":{},\"site\":{},\"detail\":{},\"start_nanos\":{},\"duration_nanos\":{}}}",
            self.trace_id,
            self.span_id,
            self.parent_span_id,
            crate::quote(self.name),
            self.site,
            self.detail,
            self.start_nanos,
            self.duration_nanos,
        )
    }
}

/// A [`SpanRecord`] parsed back from its JSONL form (the name is owned —
/// parsing cannot mint `&'static str`s).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSpan {
    /// See [`SpanRecord::trace_id`].
    pub trace_id: u64,
    /// See [`SpanRecord::span_id`].
    pub span_id: u64,
    /// See [`SpanRecord::parent_span_id`].
    pub parent_span_id: u64,
    /// See [`SpanRecord::name`].
    pub name: String,
    /// See [`SpanRecord::site`].
    pub site: i64,
    /// See [`SpanRecord::detail`].
    pub detail: u64,
    /// See [`SpanRecord::start_nanos`].
    pub start_nanos: u64,
    /// See [`SpanRecord::duration_nanos`].
    pub duration_nanos: u64,
}

fn json_field<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let tag = format!("\"{field}\":");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn json_u64(line: &str, field: &str) -> Option<u64> {
    json_field(line, field)?.parse().ok()
}

fn json_i64(line: &str, field: &str) -> Option<i64> {
    json_field(line, field)?.parse().ok()
}

impl ParsedSpan {
    /// Parses one line produced by [`SpanRecord::to_json_line`]; `None`
    /// on malformed input.
    pub fn parse(line: &str) -> Option<ParsedSpan> {
        let name_raw = json_field(line, "name")?;
        let name = name_raw.strip_prefix('"')?.strip_suffix('"')?;
        Some(ParsedSpan {
            trace_id: json_u64(line, "trace_id")?,
            span_id: json_u64(line, "span_id")?,
            parent_span_id: json_u64(line, "parent_span_id")?,
            name: name.replace("\\\"", "\"").replace("\\\\", "\\"),
            site: json_i64(line, "site")?,
            detail: json_u64(line, "detail")?,
            start_nanos: json_u64(line, "start_nanos")?,
            duration_nanos: json_u64(line, "duration_nanos")?,
        })
    }
}

/// Drains the flight recorder to a [`Write`] as JSON Lines. Every
/// [`drain`](TraceSink::drain) flushes its batch, so a crash between
/// drains loses only spans recorded since the previous one; dropping the
/// sink performs a final best-effort drain-and-flush, so long-lived sinks
/// no longer silently discard the tail of a run.
pub struct TraceSink<W: Write> {
    /// `None` only once [`into_inner`](TraceSink::into_inner) has disarmed
    /// the `Drop` drain.
    writer: Option<W>,
}

impl<W: Write> TraceSink<W> {
    /// Wraps `writer`; nothing is written until [`TraceSink::drain`].
    pub fn new(writer: W) -> TraceSink<W> {
        TraceSink {
            writer: Some(writer),
        }
    }

    /// Drains every ring and writes one JSONL line per span (sorted by
    /// start time), then flushes the batch. Returns the number of spans
    /// written.
    pub fn drain(&mut self) -> io::Result<usize> {
        let Some(writer) = self.writer.as_mut() else {
            return Ok(0);
        };
        let spans = drain_spans();
        for s in &spans {
            writer.write_all(s.to_json_line().as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        Ok(spans.len())
    }

    /// Unwraps the inner writer after a final drain-and-flush.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.drain()?;
        // lint: allow(panic-freedom) -- the writer is only None after this method or Drop, both of which consume the sink
        Ok(self.writer.take().expect("sink already consumed"))
    }
}

impl<W: Write> Drop for TraceSink<W> {
    fn drop(&mut self) {
        // Best-effort: spans recorded after the last explicit drain still
        // reach the writer when the sink goes out of scope. Errors are
        // unreportable here and deliberately ignored.
        let _ = self.drain();
    }
}

/// Parses a JSONL trace dump (as produced by [`TraceSink`]) tolerantly:
/// malformed lines — typically the single truncated trailing line a
/// `kill -9` mid-write leaves behind — are skipped and counted rather
/// than poisoning the whole file. Returns the spans in file order and the
/// number of lines skipped.
pub fn parse_jsonl(text: &str) -> (Vec<ParsedSpan>, usize) {
    let mut spans = Vec::new();
    let mut skipped = 0;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match ParsedSpan::parse(line) {
            Some(s) => spans.push(s),
            None => skipped += 1,
        }
    }
    (spans, skipped)
}

// ---------------------------------------------------------------------------
// Cross-process trace stitching
// ---------------------------------------------------------------------------

/// One span in a stitched cluster trace, tagged with the rank whose
/// flight recorder shipped it (`-1` for spans drained locally, e.g. the
/// client process's own recorder).
#[derive(Debug, Clone, PartialEq)]
pub struct RankedSpan {
    /// Scrape origin rank, or -1 when the span came from the local drain.
    pub rank: i64,
    /// The parsed span record.
    pub span: ParsedSpan,
}

/// One logical operation's spans, stitched across process boundaries into
/// a parent-linked tree keyed by `trace_id`. Built by [`stitch`].
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace id shared by every span in this tree.
    pub trace_id: u64,
    /// All spans of the trace, sorted by (`start_nanos`, `span_id`).
    /// Note: start times are per-process monotonic nanos, so cross-rank
    /// ordering is approximate — parent links are the causal truth.
    pub spans: Vec<RankedSpan>,
    /// `children[i]` holds indices into `spans` whose parent is span `i`.
    pub children: Vec<Vec<usize>>,
    /// Indices of root spans (`parent_span_id == 0`).
    pub roots: Vec<usize>,
    /// Indices of spans whose nonzero parent id matches no span in the
    /// tree — evidence of a lost ring slot or a rank that failed to ship.
    pub orphans: Vec<usize>,
}

impl TraceTree {
    /// A fully stitched operation: exactly one root, every other span
    /// reachable from it via parent links.
    pub fn is_connected(&self) -> bool {
        self.roots.len() == 1 && self.orphans.is_empty()
    }

    /// Distinct scrape ranks (≥ 0) contributing spans, ascending.
    pub fn ranks(&self) -> Vec<i64> {
        let mut ranks: Vec<i64> = self
            .spans
            .iter()
            .map(|s| s.rank)
            .filter(|&r| r >= 0)
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Renders the tree as indented ASCII, one span per line, children
    /// under parents (orphans listed last at the top level).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for &root in &self.roots {
            self.render_at(root, 0, &mut out);
        }
        for &orphan in &self.orphans {
            out.push_str("(orphan)\n");
            self.render_at(orphan, 1, &mut out);
        }
        out
    }

    fn render_at(&self, idx: usize, depth: usize, out: &mut String) {
        let s = &self.spans[idx];
        let origin = if s.rank >= 0 {
            format!("rank {}", s.rank)
        } else {
            "local".to_string()
        };
        out.push_str(&format!(
            "{}{} [{} site={} detail={} {:.3}ms]\n",
            "  ".repeat(depth),
            s.span.name,
            origin,
            s.span.site,
            s.span.detail,
            s.span.duration_nanos as f64 / 1e6,
        ));
        for &child in &self.children[idx] {
            self.render_at(child, depth + 1, out);
        }
    }
}

/// Groups spans by `trace_id` and parent-links each group into a
/// [`TraceTree`]. Trees come back ordered by the earliest span start
/// within each trace (per-process clocks, so approximate across ranks).
pub fn stitch(mut spans: Vec<RankedSpan>) -> Vec<TraceTree> {
    spans.sort_by_key(|s| (s.span.trace_id, s.span.start_nanos, s.span.span_id));
    let mut trees = Vec::new();
    let mut start = 0;
    while start < spans.len() {
        let trace_id = spans[start].span.trace_id;
        let mut end = start;
        while end < spans.len() && spans[end].span.trace_id == trace_id {
            end += 1;
        }
        let group: Vec<RankedSpan> = spans[start..end].to_vec();
        start = end;

        let mut by_id = std::collections::HashMap::with_capacity(group.len());
        for (i, s) in group.iter().enumerate() {
            by_id.entry(s.span.span_id).or_insert(i);
        }
        let mut children = vec![Vec::new(); group.len()];
        let mut roots = Vec::new();
        let mut orphans = Vec::new();
        for (i, s) in group.iter().enumerate() {
            if s.span.parent_span_id == 0 {
                roots.push(i);
            } else {
                match by_id.get(&s.span.parent_span_id) {
                    Some(&p) if p != i => children[p].push(i),
                    _ => orphans.push(i),
                }
            }
        }
        trees.push(TraceTree {
            trace_id,
            spans: group,
            children,
            roots,
            orphans,
        });
    }
    trees.sort_by_key(|t| t.spans.first().map_or(0, |s| s.span.start_nanos));
    trees
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_round_trips() {
        let rec = SpanRecord {
            trace_id: 0xDEAD_BEEF_0123_4567,
            span_id: 2,
            parent_span_id: 3,
            name: "test.\"quoted\"",
            site: -1,
            detail: 9,
            start_nanos: 17,
            duration_nanos: 23,
        };
        let parsed = ParsedSpan::parse(&rec.to_json_line()).expect("parses");
        assert_eq!(parsed.trace_id, rec.trace_id);
        assert_eq!(parsed.span_id, rec.span_id);
        assert_eq!(parsed.parent_span_id, rec.parent_span_id);
        assert_eq!(parsed.name, "test.\"quoted\"");
        assert_eq!(parsed.site, -1);
        assert_eq!(parsed.detail, 9);
        assert_eq!(parsed.start_nanos, 17);
        assert_eq!(parsed.duration_nanos, 23);
        assert!(ParsedSpan::parse("not a span").is_none());
        assert!(ParsedSpan::parse("{\"trace_id\":1}").is_none());
    }

    /// One combined test: `drain_spans` empties the process-global
    /// recorder, so splitting these assertions across parallel `#[test]`
    /// functions would make them steal each other's spans.
    #[test]
    fn flight_recorder_end_to_end() {
        set_tracing(true);

        // Parenting: root → child → remote hand-off, plus an event.
        let (trace_id, root_id, child_id, remote_id) = {
            let root = root_span("test.root");
            let rctx = root.context().expect("recording");
            let child = child_span("test.child");
            let cctx = child.context().expect("recording");
            assert_eq!(cctx.trace_id, rctx.trace_id, "child shares the trace");
            let remote = remote_span("test.remote", child.context());
            let mctx = remote.context().expect("recording");
            event("test.event", mctx, 7, 42);
            (
                rctx.trace_id,
                rctx.parent_span_id,
                cctx.parent_span_id,
                mctx.parent_span_id,
            )
        };
        let inert = remote_span("test.inert", None);
        assert!(!inert.is_recording(), "no context → no span");
        drop(inert);
        let spans = drain_spans();
        let tree: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
        assert_eq!(tree.len(), 4, "root + child + remote + event: {tree:?}");
        let find = |name: &str| tree.iter().find(|s| s.name == name).copied().expect(name);
        assert_eq!(find("test.root").parent_span_id, 0);
        assert_eq!(find("test.root").span_id, root_id);
        assert_eq!(find("test.child").parent_span_id, root_id);
        assert_eq!(find("test.child").span_id, child_id);
        assert_eq!(find("test.remote").parent_span_id, child_id);
        assert_eq!(find("test.remote").span_id, remote_id);
        assert_eq!(find("test.event").parent_span_id, remote_id);
        assert_eq!(find("test.event").duration_nanos, 0);
        assert_eq!(find("test.event").site, 7);
        assert_eq!(find("test.event").detail, 42);
        assert!(!spans.iter().any(|s| s.name == "test.inert"));

        // The runtime gate: disabled spans record nothing.
        set_tracing(false);
        let off = root_span("test.off");
        assert!(!off.is_recording());
        drop(off);
        set_tracing(true);
        assert!(!drain_spans().iter().any(|s| s.name == "test.off"));

        // Ring overwrite: a capacity-8 ring keeps only the newest 8 spans.
        set_ring_capacity(8);
        let minted: Vec<u64> = std::thread::spawn(|| {
            (0..20)
                .map(|_| {
                    let s = root_span("test.ring");
                    s.context().expect("recording").trace_id
                })
                .collect()
        })
        .join()
        .expect("ring thread");
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        let survivors: Vec<u64> = drain_spans()
            .iter()
            .filter(|s| s.name == "test.ring")
            .map(|s| s.trace_id)
            .collect();
        assert_eq!(survivors, minted[12..], "newest 8 of 20 survive, in order");

        // Sink lifecycle (here rather than its own #[test]: dropping a
        // sink drains the global recorder, which would steal a parallel
        // test's spans). A sink dropped without an explicit drain still
        // writes and flushes the spans recorded since the last drain.
        let state: Arc<Mutex<(Vec<u8>, usize)>> = Arc::new(Mutex::new((Vec::new(), 0)));
        struct CountingWriter(Arc<Mutex<(Vec<u8>, usize)>>);
        impl Write for CountingWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().expect("writer lock").0.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                self.0.lock().expect("writer lock").1 += 1;
                Ok(())
            }
        }
        drop(root_span("test.sink_drop"));
        drop(TraceSink::new(CountingWriter(state.clone())));
        {
            let guard = state.lock().expect("writer lock");
            let text = String::from_utf8(guard.0.clone()).expect("utf8 jsonl");
            assert!(
                text.contains("test.sink_drop"),
                "Drop drained the recorder: {text}"
            );
            assert!(guard.1 >= 1, "Drop flushed the writer");
        }
        // into_inner disarms the Drop drain and hands the writer back.
        drop(root_span("test.sink_inner"));
        let sink = TraceSink::new(CountingWriter(state.clone()));
        let _writer = sink.into_inner().expect("into_inner drains");
        let text =
            String::from_utf8(state.lock().expect("writer lock").0.clone()).expect("utf8 jsonl");
        assert!(text.contains("test.sink_inner"));

        set_tracing(false);
    }

    #[test]
    fn stitching_links_cross_rank_spans_into_one_tree() {
        let mk = |trace_id, span_id, parent, name: &str, rank, start| RankedSpan {
            rank,
            span: ParsedSpan {
                trace_id,
                span_id,
                parent_span_id: parent,
                name: name.to_string(),
                site: rank,
                detail: 0,
                start_nanos: start,
                duration_nanos: 1,
            },
        };
        // trace 7: client root (local) → rank 0 handle → rank 2 forward
        // target, plus a same-rank child. trace 9: an orphan (parent
        // never shipped).
        let spans = vec![
            mk(7, 100, 0, "client.search", -1, 10),
            mk(7, 200, 100, "bucket.handle", 0, 20),
            mk(7, 300, 200, "bucket.handle", 2, 30),
            mk(7, 301, 300, "bucket.scan", 2, 31),
            mk(9, 500, 444, "bucket.handle", 1, 5),
        ];
        let trees = stitch(spans);
        assert_eq!(trees.len(), 2);
        // trace 9 starts earlier (start_nanos 5) so it sorts first
        assert_eq!(trees[0].trace_id, 9);
        assert!(!trees[0].is_connected());
        assert_eq!(trees[0].orphans.len(), 1);
        let t7 = &trees[1];
        assert_eq!(t7.trace_id, 7);
        assert!(t7.is_connected(), "single root, no orphans: {t7:?}");
        assert_eq!(t7.ranks(), vec![0, 2], "local client rank excluded");
        // causal chain: root → rank0 → rank2 → scan
        let root = t7.roots[0];
        assert_eq!(t7.spans[root].span.name, "client.search");
        let hop1 = t7.children[root][0];
        assert_eq!(t7.spans[hop1].rank, 0);
        let hop2 = t7.children[hop1][0];
        assert_eq!(t7.spans[hop2].rank, 2);
        assert_eq!(t7.children[hop2].len(), 1);
        let render = t7.render();
        assert!(render.contains("client.search"), "{render}");
        assert!(render.contains("rank 2"), "{render}");
    }

    #[test]
    fn jsonl_reader_skips_and_counts_partial_tail() {
        let rec = SpanRecord {
            trace_id: 1,
            span_id: 2,
            parent_span_id: 0,
            name: "test.reader",
            site: 3,
            detail: 4,
            start_nanos: 5,
            duration_nanos: 6,
        };
        let line = rec.to_json_line();
        let mut dump = String::new();
        dump.push_str(&line);
        dump.push('\n');
        dump.push('\n'); // blank lines are ignored, not counted
        dump.push_str(&line);
        dump.push('\n');
        // a kill -9 mid-write leaves a truncated final line, no newline
        dump.push_str(&line[..line.len() / 2]);
        let (spans, skipped) = parse_jsonl(&dump);
        assert_eq!(spans.len(), 2);
        assert_eq!(skipped, 1, "torn tail is counted, not fatal");
        assert!(spans.iter().all(|s| s.name == "test.reader"));
        // a fully well-formed dump skips nothing
        let (spans, skipped) = parse_jsonl(&format!("{line}\n"));
        assert_eq!((spans.len(), skipped), (1, 0));
    }
}
