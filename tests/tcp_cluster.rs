//! Multi-process TCP cluster end to end: three real `sdds serve` OS
//! processes on loopback ports, a client in this process, connection
//! kills mid-ingest, and final results byte-identical to an
//! uninterrupted in-process channel run over the same seeded workload.

use sdds_repro::core::{EncryptedSearchStore, SchemeConfig, StoreBuilder};
use sdds_repro::corpus::{DirectoryGenerator, Record};
use sdds_repro::net::SiteRegistry;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const ENTRIES: usize = 240;
const SEED: u64 = 42;
const CAPACITY: usize = 16;

/// Reserves `n` distinct loopback ports by binding ephemeral listeners,
/// then frees them for the serve children.
fn reserve_loopback_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

/// The store configuration shared by every process of the run — the
/// serve children rebuild it from their flags (`serve_cmd` uses the same
/// passphrase and training rule), so key material and the scan filter
/// match bit for bit without ever crossing the wire.
fn builder(records: &[Record]) -> StoreBuilder {
    let config = SchemeConfig::basic(4, 4).expect("valid config");
    let mut builder = EncryptedSearchStore::builder(config)
        .passphrase("sdds-cli")
        .bucket_capacity(CAPACITY)
        // short per-attempt timeout: rides out the severed-stream message
        // losses below in seconds, not the 10s default
        .op_timeout(Duration::from_secs(2));
    if config.encoding.is_some() {
        builder = builder.train(records.iter().take(1000).map(|r| r.rc.clone()));
    }
    builder
}

/// Reaps the serve children, asserting each exited cleanly after the
/// cluster-wide shutdown broadcast.
fn wait_children(mut children: Vec<Child>) {
    let deadline = Instant::now() + Duration::from_secs(30);
    for child in &mut children {
        loop {
            match child.try_wait() {
                Ok(Some(status)) => {
                    assert!(status.success(), "serve rank exited with {status}");
                    break;
                }
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    panic!("serve rank did not exit after shutdown");
                }
            }
        }
    }
}

#[test]
fn three_process_cluster_rides_out_severed_connections_and_matches_in_process() {
    let addrs = reserve_loopback_addrs(3);
    let registry_path =
        std::env::temp_dir().join(format!("sdds-test-registry-{}.txt", std::process::id()));
    std::fs::write(&registry_path, addrs.join("\n") + "\n").expect("write registry");

    let exe = env!("CARGO_BIN_EXE_sdds");
    let children: Vec<Child> = (0..3)
        .map(|rank: usize| {
            Command::new(exe)
                .arg("serve")
                .arg("--site")
                .arg(rank.to_string())
                .arg("--registry")
                .arg(&registry_path)
                .arg("--entries")
                .arg(ENTRIES.to_string())
                .arg("--seed")
                .arg(SEED.to_string())
                .arg("--capacity")
                .arg(CAPACITY.to_string())
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn serve rank")
        })
        .collect();

    let records = DirectoryGenerator::new(SEED).generate(ENTRIES);

    // the uninterrupted in-process reference run
    let reference = builder(&records).start();
    for r in &records {
        reference.insert(r.rid, &r.rc).expect("reference insert");
    }

    let registry = SiteRegistry::load(&registry_path).expect("load registry");
    let remote = builder(&records).connect(registry);
    let handle = remote.handle();
    let reconnects_before = sdds_obs::counter("net.tcp.reconnects").get();
    for (i, r) in records.iter().enumerate() {
        if i == ENTRIES / 3 {
            // sever every pooled client stream mid-ingest: the next sends
            // must re-dial (and re-announce the client's dynamic id so
            // replies keep routing)
            remote.cluster().drop_connections();
        }
        if i == 2 * ENTRIES / 3 {
            // also tear down rank 1's server-side streams; its accepted
            // connections die and the client re-dials on demand
            remote.cluster().sever_rank(1).expect("sever rank 1");
        }
        handle.insert(r.rid, &r.rc).expect("tcp insert");
    }
    assert!(
        sdds_obs::counter("net.tcp.reconnects").get() > reconnects_before,
        "expected client-side reconnects after severing connections"
    );

    // byte-identical results: same hit lists for every pattern, same
    // record bytes for every rid
    for pattern in ["MARTINEZ", "NGUYEN", "SMITH", "GARC", "QQQQZZ"] {
        assert_eq!(
            handle.search(pattern).expect("tcp search"),
            reference.search(pattern).expect("reference search"),
            "search {pattern:?} diverged between transports"
        );
    }
    for r in &records {
        assert_eq!(
            handle.get(r.rid).expect("tcp get").as_deref(),
            Some(r.rc.as_str()),
            "get({}) over tcp",
            r.rid
        );
    }

    remote.shutdown_cluster();
    wait_children(children);
    let _ = std::fs::remove_file(&registry_path);
    reference.shutdown();
}
