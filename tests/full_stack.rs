//! Workspace-spanning integration tests: corpus → scheme → LH\* cluster →
//! search → statistics, all through the public `sdds_repro` facade.

use sdds_repro::baseline::{naive::NaiveStore, swp::SwpStore};
use sdds_repro::cipher::MasterKey;
use sdds_repro::core::{EncodingConfig, EncryptedSearchStore, SchemeConfig};
use sdds_repro::corpus::{format_directory, parse_directory, DirectoryGenerator};
use sdds_repro::lh::ParityConfig;
use sdds_repro::stats::chi2::Chi2Report;

#[test]
fn directory_file_roundtrip_feeds_the_store() {
    // corpus → Figure-4 file → parse → encrypted store → search
    let records = DirectoryGenerator::new(5).generate(150);
    let file = format_directory(&records);
    let parsed = parse_directory(&file).unwrap();
    assert_eq!(parsed, records);

    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).unwrap())
        .passphrase("roundtrip")
        .start();
    for r in &parsed {
        store.insert(r.rid, &r.rc).unwrap();
    }
    let hits = store.search("MARTINEZ").unwrap();
    for r in records.iter().filter(|r| r.rc.contains("MARTINEZ")) {
        assert!(hits.contains(&r.rid));
    }
    store.shutdown();
}

#[test]
fn all_three_systems_agree_on_word_searches() {
    // For whole-word queries, the encrypted scheme (post-filtered), the
    // SWP baseline, and the naive baseline must agree exactly.
    let records = DirectoryGenerator::new(6).generate(200);
    let master = MasterKey::new([11; 16]);

    let scheme = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).unwrap())
        .passphrase("agree")
        .start();
    let swp = SwpStore::start(&master, 64);
    let naive = NaiveStore::start(&master, 64);
    for r in &records {
        scheme.insert(r.rid, &r.rc).unwrap();
        swp.insert(r.rid, &r.rc).unwrap();
        naive.insert(r.rid, &r.rc).unwrap();
    }
    for word in ["MARTINEZ", "NGUYEN", "WILLIAMS"] {
        // SWP finds whole words only; compare against word-boundary truth
        let mut swp_hits = swp.search_word(word).unwrap();
        swp_hits.sort_unstable();
        let mut word_truth: Vec<u64> = records
            .iter()
            .filter(|r| r.rc.split_whitespace().any(|w| w == word))
            .map(|r| r.rid)
            .collect();
        word_truth.sort_unstable();
        assert_eq!(swp_hits, word_truth, "SWP for {word}");

        // substring truth (≥ word truth)
        let mut substr_truth: Vec<u64> = records
            .iter()
            .filter(|r| r.rc.contains(word))
            .map(|r| r.rid)
            .collect();
        substr_truth.sort_unstable();
        let naive_hits = naive.search(word).unwrap();
        assert_eq!(naive_hits, substr_truth, "naive for {word}");
        let mut exact: Vec<u64> = scheme
            .fetch_matching(word)
            .unwrap()
            .into_iter()
            .map(|(rid, _)| rid)
            .collect();
        exact.sort_unstable();
        assert_eq!(exact, substr_truth, "scheme (post-filtered) for {word}");
    }
    scheme.shutdown();
    swp.shutdown();
    naive.shutdown();
}

#[test]
fn substring_queries_beat_word_granularity() {
    // the paper's headline difference: pattern inside a word
    let records = DirectoryGenerator::new(8).generate(100);
    let master = MasterKey::new([12; 16]);
    let scheme = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).unwrap())
        .passphrase("frag")
        .start();
    let swp = SwpStore::start(&master, 64);
    for r in &records {
        scheme.insert(r.rid, &r.rc).unwrap();
        swp.insert(r.rid, &r.rc).unwrap();
    }
    // "ARTINE" occurs inside MARTINEZ
    let truth: Vec<u64> = records
        .iter()
        .filter(|r| r.rc.contains("ARTINE"))
        .map(|r| r.rid)
        .collect();
    if !truth.is_empty() {
        let scheme_hits = scheme.search("ARTINE").unwrap();
        for rid in &truth {
            assert!(
                scheme_hits.contains(rid),
                "scheme must find in-word fragments"
            );
        }
        assert!(
            swp.search_word("ARTINE").unwrap().is_empty(),
            "SWP cannot find in-word fragments"
        );
    }
    scheme.shutdown();
    swp.shutdown();
}

#[test]
fn encrypted_store_survives_bucket_loss_with_parity() {
    let records = DirectoryGenerator::new(9).generate(120);
    let mut cfg = SchemeConfig::basic(4, 2).unwrap();
    cfg.encoding = Some(EncodingConfig::whole_chunk(256));
    let cfg = cfg.validated().unwrap();
    let store = EncryptedSearchStore::builder(cfg)
        .passphrase("ha")
        .bucket_capacity(16)
        .parity(ParityConfig {
            group_size: 2,
            parity_count: 1,
            slot_size: 128,
        })
        .train(records.iter().map(|r| r.rc.clone()))
        .start();
    for r in &records {
        store.insert(r.rid, &r.rc).unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(300)); // drain parity
    store.cluster().kill_bucket(1);
    store.cluster().recover_bucket(1).unwrap();
    // all record copies and index records intact: search + get still work
    for r in records.iter().take(30) {
        assert_eq!(
            store.get(r.rid).unwrap(),
            Some(r.rc.clone()),
            "rid {}",
            r.rid
        );
    }
    let hits = store.search("MARTINEZ").unwrap();
    for r in records.iter().filter(|r| r.rc.contains("MARTINEZ")) {
        assert!(hits.contains(&r.rid));
    }
    store.shutdown();
}

#[test]
fn our_aes_ctr_keystream_passes_our_randomness_battery() {
    // Two substrates validating each other: the AES implementation's CTR
    // keystream must look random to the SP 800-22 battery, while the
    // plaintext it came from must not.
    use sdds_repro::cipher::{modes, Aes128};
    use sdds_repro::stats::RandomnessReport;
    let aes = Aes128::new(&[0x5A; 16]);
    let mut stream = vec![0u8; 16384];
    modes::ctr_xor(&aes, &[1; 16], &mut stream);
    let report = RandomnessReport::run(&stream);
    assert_eq!(
        report.passed(0.001),
        report.tests.len(),
        "AES-CTR keystream failed the battery: {report:?}"
    );
    let zeros = RandomnessReport::run(&vec![0u8; 16384]);
    assert!(zeros.passed(0.001) < zeros.tests.len() / 2);
}

#[test]
fn snapshot_of_an_encrypted_store_restores_searchably() {
    // cross-crate: core store -> lh snapshot -> fresh cluster -> same
    // encrypted index answers (the pipeline is key-derived, so a new store
    // with the same passphrase produces compatible queries)
    use sdds_repro::lh::LhCluster;
    let records = DirectoryGenerator::new(88).generate(150);
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).unwrap())
        .passphrase("persist")
        .start();
    store
        .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
        .unwrap();
    let truth: Vec<u64> = records
        .iter()
        .filter(|r| r.rc.contains("MARTINEZ"))
        .map(|r| r.rid)
        .collect();
    let before = store.search("MARTINEZ").unwrap();
    let snap = store.cluster().snapshot().unwrap();
    store.shutdown();

    // restore the file into a fresh cluster wired with the same filter
    let restored_cluster = LhCluster::restore(
        sdds_repro::lh::ClusterConfig {
            filter: std::sync::Arc::new(sdds_repro::core::EncryptedIndexFilter::default()),
            ..Default::default()
        },
        &snap,
    )
    .unwrap();
    // a new store facade over the same key material rebuilds the pipeline;
    // here we query through a raw client + pipeline to avoid re-inserting
    let probe = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).unwrap())
        .passphrase("persist")
        .start();
    let query = probe.pipeline().build_query("MARTINEZ").unwrap();
    let client = restored_cluster.client();
    let matches = client.scan(&query.encode(), true).unwrap();
    let mut hit_rids: Vec<u64> = matches
        .iter()
        .map(|m| probe.pipeline().parse_key(m.key).0)
        .collect();
    hit_rids.sort_unstable();
    hit_rids.dedup();
    for rid in &truth {
        assert!(hit_rids.contains(rid), "restored index lost rid {rid}");
    }
    assert!(!before.is_empty());
    probe.shutdown();
    restored_cluster.shutdown();
}

/// Soak test: a paper-scale slice of the directory through the full
/// distributed store. Run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "multi-second soak; run explicitly with --ignored"]
fn soak_twenty_thousand_records() {
    let records = DirectoryGenerator::new(20_000).generate(20_000);
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).unwrap())
        .passphrase("soak")
        .bucket_capacity(256)
        .start();
    let t0 = std::time::Instant::now();
    store
        .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
        .unwrap();
    let load = t0.elapsed();
    let t0 = std::time::Instant::now();
    for pattern in ["MARTINEZ", "WILLIAMS", "NGUYEN", "GONZALEZ"] {
        let truth: Vec<u64> = records
            .iter()
            .filter(|r| r.rc.contains(pattern))
            .map(|r| r.rid)
            .collect();
        let hits = store.search(pattern).unwrap();
        for rid in &truth {
            assert!(hits.contains(rid), "missed {pattern} in {rid}");
        }
    }
    let search = t0.elapsed();
    eprintln!(
        "[soak] 20k records: load {load:?}, 4 searches {search:?}, {} buckets, {} msgs",
        store.cluster().num_buckets(),
        store.cluster().network().stats().messages()
    );
    // spot-check retrieval
    for r in records.iter().step_by(997) {
        assert_eq!(store.get(r.rid).unwrap(), Some(r.rc.clone()));
    }
    store.shutdown();
}

#[test]
fn index_bodies_flatten_statistics_versus_plaintext() {
    // cross-crate: corpus + core + stats — what a site stores is far
    // closer to uniform than the plaintext it encodes
    let records = DirectoryGenerator::new(10).generate(500);
    let mut cfg = SchemeConfig::basic(4, 2).unwrap();
    cfg.encoding = Some(EncodingConfig::whole_chunk(256));
    cfg.dispersion = Some(4); // 2-bit shares... 8/4: code 8 bits / 4 = 2
    let cfg = cfg.validated().unwrap();
    let store = EncryptedSearchStore::builder(cfg)
        .passphrase("stats")
        .train(records.iter().map(|r| r.rc.clone()))
        .start();
    let pipeline = store.pipeline();

    let plain_streams: Vec<Vec<u16>> = records.iter().map(|r| r.symbols()).collect();
    let plain = Chi2Report::from_records(plain_streams.iter().map(|v| v.as_slice()), 256);

    // what dispersion site 0 of chunking 0 stores (2-bit shares in bytes)
    let site_streams: Vec<Vec<u16>> = records
        .iter()
        .map(|r| {
            pipeline.index_records(&r.rc)[0]
                .body
                .iter()
                .map(|&b| u16::from(b))
                .collect()
        })
        .collect();
    let site = Chi2Report::from_records(site_streams.iter().map(|v| v.as_slice()), 4);
    // normalise by observation count before comparing
    let plain_rate = plain.single / plain.observations as f64;
    let site_rate = site.single / site.observations as f64;
    assert!(
        site_rate < plain_rate / 5.0,
        "site view should be far flatter: {site_rate} vs {plain_rate}"
    );
    store.shutdown();
}
