//! The cluster observability plane end to end: three real `sdds serve`
//! OS processes on loopback ports, a traced search from this process,
//! and an [`ObsPull`] scrape of every rank's metrics and flight-recorder
//! spans over the host control channel. Asserts the PR's two headline
//! properties: the merged metrics aggregate equals the sum of the
//! per-rank scrapes, and the traced search stitches into a single
//! connected cross-process tree — forward hops parent-linked across
//! process boundaries, no orphans.

use sdds_repro::core::{EncryptedSearchStore, SchemeConfig, StoreBuilder};
use sdds_repro::corpus::{DirectoryGenerator, Record};
use sdds_repro::lh::ScrapeOptions;
use sdds_repro::net::SiteRegistry;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const ENTRIES: usize = 240;
const SEED: u64 = 42;
const CAPACITY: usize = 16;

/// Reserves `n` distinct loopback ports by binding ephemeral listeners,
/// then frees them for the serve children.
fn reserve_loopback_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

/// The store configuration shared by every process of the run (see
/// `tests/tcp_cluster.rs` for why the builders must match bit for bit).
fn builder(records: &[Record]) -> StoreBuilder {
    let config = SchemeConfig::basic(4, 4).expect("valid config");
    let mut builder = EncryptedSearchStore::builder(config)
        .passphrase("sdds-cli")
        .bucket_capacity(CAPACITY)
        .op_timeout(Duration::from_secs(5));
    if config.encoding.is_some() {
        builder = builder.train(records.iter().take(1000).map(|r| r.rc.clone()));
    }
    builder
}

/// Reaps the serve children, asserting each exited cleanly after the
/// cluster-wide shutdown broadcast.
fn wait_children(mut children: Vec<Child>) {
    let deadline = Instant::now() + Duration::from_secs(30);
    for child in &mut children {
        loop {
            match child.try_wait() {
                Ok(Some(status)) => {
                    assert!(status.success(), "serve rank exited with {status}");
                    break;
                }
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    panic!("serve rank did not exit after shutdown");
                }
            }
        }
    }
}

/// Drains this process's flight recorder back into parsed spans.
fn local_spans() -> Vec<sdds_obs::trace::ParsedSpan> {
    let mut text = String::new();
    for s in sdds_obs::trace::drain_spans() {
        text.push_str(&s.to_json_line());
        text.push('\n');
    }
    let (spans, skipped) = sdds_obs::trace::parse_jsonl(&text);
    assert_eq!(skipped, 0, "locally recorded spans must round-trip");
    spans
}

#[test]
fn scrape_sums_rank_metrics_and_stitches_one_connected_cross_process_trace() {
    let addrs = reserve_loopback_addrs(3);
    let registry_path =
        std::env::temp_dir().join(format!("sdds-obs-registry-{}.txt", std::process::id()));
    std::fs::write(&registry_path, addrs.join("\n") + "\n").expect("write registry");

    let exe = env!("CARGO_BIN_EXE_sdds");
    let children: Vec<Child> = (0..3)
        .map(|rank: usize| {
            Command::new(exe)
                .arg("serve")
                .arg("--site")
                .arg(rank.to_string())
                .arg("--registry")
                .arg(&registry_path)
                .arg("--entries")
                .arg(ENTRIES.to_string())
                .arg("--seed")
                .arg(SEED.to_string())
                .arg("--capacity")
                .arg(CAPACITY.to_string())
                // rank-side span recording; a fast obs tick so the
                // snapshot-ring history fills within the test's lifetime
                .arg("--trace")
                .arg("--obs-tick-millis")
                .arg("50")
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn serve rank")
        })
        .collect();

    let records = DirectoryGenerator::new(SEED).generate(ENTRIES);
    let registry = SiteRegistry::load(&registry_path).expect("load registry");
    let remote = builder(&records).connect(registry);
    let handle = remote.handle();
    handle
        .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
        .expect("preload");

    // One traced search. The preload ran untraced (no client-side
    // context), so the rank recorders hold exactly this operation.
    let _ = sdds_obs::trace::drain_spans();
    sdds_obs::trace::set_tracing(true);
    let hits = handle.search("MARTINEZ").expect("traced search");
    sdds_obs::trace::set_tracing(false);
    assert!(!hits.is_empty(), "the seeded corpus contains MARTINEZ");
    // Let the rank event loops close their spans before scraping: the
    // reply can beat the server-side ring writes by a scheduler beat.
    std::thread::sleep(Duration::from_millis(300));

    let scrape = remote
        .obs()
        .scrape(&ScrapeOptions {
            metrics: true,
            spans: true,
            history: true,
            timeout: Duration::from_secs(10),
        })
        .expect("scrape");
    assert!(scrape.missing.is_empty(), "missing: {:?}", scrape.missing);
    assert_eq!(scrape.ranks.len(), 3);

    // Headline property 1: the aggregate is exactly the per-rank sum —
    // for every counter, every gauge, and every histogram bucket.
    for (name, total) in &scrape.aggregate.counters {
        let sum: u64 = scrape
            .ranks
            .iter()
            .filter_map(|r| r.metrics.as_ref())
            .filter_map(|m| m.counters.get(name))
            .sum();
        assert_eq!(*total, sum, "counter {name}");
    }
    for (name, total) in &scrape.aggregate.gauges {
        let sum: i64 = scrape
            .ranks
            .iter()
            .filter_map(|r| r.metrics.as_ref())
            .filter_map(|m| m.gauges.get(name))
            .sum();
        assert_eq!(*total, sum, "gauge {name}");
    }
    for (name, total) in &scrape.aggregate.histograms {
        let count: u64 = scrape
            .ranks
            .iter()
            .filter_map(|r| r.metrics.as_ref())
            .filter_map(|m| m.histograms.get(name))
            .map(|h| h.count)
            .sum();
        assert_eq!(total.count, count, "histogram {name}");
    }
    // Every rank distributed real work: each bucket event loop observed
    // stalls, and the fast tick filled each snapshot ring.
    for r in &scrape.ranks {
        let m = r.metrics.as_ref().expect("rank metrics");
        assert!(
            m.histograms
                .get("lh.loop_stall_seconds")
                .is_some_and(|h| h.count > 0),
            "rank {} event loops never reported a dispatch",
            r.rank
        );
        assert!(!r.history.is_empty(), "rank {} snapshot ring empty", r.rank);
        assert!(!r.spans.is_empty(), "rank {} shipped no spans", r.rank);
    }

    // Headline property 2: the traced search stitches into one connected
    // cross-process tree.
    let trees = scrape.traces(local_spans());
    assert_eq!(trees.len(), 1, "exactly one traced operation");
    let tree = &trees[0];
    assert!(
        tree.is_connected(),
        "roots {:?} orphans {:?}\n{}",
        tree.roots,
        tree.orphans,
        tree.render()
    );
    let ranks = tree.ranks();
    assert!(
        ranks.len() >= 2,
        "spans must come from at least two distinct ranks, got {ranks:?}"
    );
    // Cross-process parent links: some span executed on a rank has its
    // parent on a different rank or on the local client (-1).
    let crossing = tree.spans.iter().any(|s| {
        s.span.parent_span_id != 0
            && tree
                .spans
                .iter()
                .any(|p| p.span.span_id == s.span.parent_span_id && p.rank != s.rank)
    });
    assert!(crossing, "no parent link crosses a process boundary");

    remote.shutdown_cluster();
    wait_children(children);
    let _ = std::fs::remove_file(&registry_path);
}
