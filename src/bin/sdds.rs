//! `sdds` — command-line front end for the encrypted searchable SDDS.
//!
//! ```text
//! sdds generate --entries 1000 --seed 7 --out directory.txt
//! sdds search --pattern MARTINEZ [--file directory.txt | --entries 2000]
//!             [--config basic|paper|swp] [--exact]
//! sdds bench-load --entries 5000
//! ```

use sdds_repro::core::{
    EncryptedSearchStore, IngestOptions, IngestStats, SchemeConfig, StoreBuilder, StoreHandle,
};
use sdds_repro::corpus::{format_directory, parse_directory, DirectoryGenerator, Record};
use sdds_repro::net::{NetConfig, SiteRegistry};
use sdds_repro::par::Pool;
use sdds_repro::stats::LeakageAuditor;
use sdds_repro::storage::{DiskEngine, DiskOptions, FsyncPolicy, StorageConfig, StorageEngine};
use std::collections::HashMap;
use std::process::exit;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        exit(2);
    };
    let flags = parse_flags(&args[1..]);
    match command.as_str() {
        "generate" => generate(&flags),
        "search" => search(&flags),
        "metrics" => metrics(&flags),
        "trace" => trace_cmd(&flags),
        "audit-leakage" => audit_leakage(&flags),
        "bench-load" => bench_load(&flags),
        "bench-search" => bench_search(&flags),
        "bench-durability" => bench_durability(&flags),
        "bench-traffic" => bench_traffic(&flags),
        "bench-net" => bench_net(&flags),
        "serve" => serve_cmd(&flags),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command {other:?}");
            usage();
            exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "usage:\n  sdds generate  --entries N [--seed S] [--out FILE]\n  \
         sdds search    --pattern P [--file FILE | --entries N] \
         [--config basic|paper|swp] [--exact] [--prefix] [--metrics-json FILE] [--trace-json FILE]\n  \
         sdds metrics   [--entries N] [--config basic|paper|swp] [--queries P1,P2,...] [--sites] \
         [--metrics-json FILE] [--cluster [--servers N | --registry FILE] [--json-out FILE]]\n  \
         sdds trace     [--pattern P] [--entries N] [--config basic|paper|swp] \
         [--cluster [--servers N]]\n  \
         sdds audit-leakage [--entries N] [--config basic|paper|swp] [--top M] \
         [--json-out FILE] [--metrics-json FILE]\n  \
         sdds bench-load --entries N [--config basic|paper|swp] [--threads N | --sweep 1,2,4] \
         [--json-out FILE] [--metrics-json FILE]\n  \
         sdds bench-search --entries N [--config basic|paper|swp] [--capacity C] [--repeat R] \
         [--queries P1,P2,...] [--json-out FILE] [--metrics-json FILE]\n  \
         sdds bench-durability [--entries N] [--batch B] [--value-bytes V] [--json-out FILE]\n  \
         sdds bench-traffic [--entries N] [--workers W] [--duration-secs D] \
         [--rates R1,R2,...] [--mix read:60,write:25,search:5,delete:10] \
         [--transport channel|tcp] [--servers N] \
         [--drain-budget B] [--inbox-capacity C] [--op-timeout-millis T] [--seed S] \
         [--skip-compare] [--compare-ops K] [--compare-repeats R] \
         [--json-out FILE] [--metrics-json FILE]\n  \
         sdds bench-net [--entries N] [--workers W] [--duration-secs D] \
         [--rates R1,R2,...] [--servers N] [--drain-budget B] [--inbox-capacity C] \
         [--seed S] [--json-out FILE] [--metrics-json FILE]\n  \
         sdds serve     --site RANK --registry FILE [--entries N] [--seed S] \
         [--config basic|paper|swp] [--capacity C] [--drain-budget B] [--inbox-capacity C] \
         [--trace] [--obs-tick-millis T] [--obs-history N] [--trace-out FILE]\n\
         \n--metrics-json FILE dumps the run's observability snapshot \
         (counters, gauges, latency histograms) as JSON\n\
         --trace-json FILE enables causal tracing for the query and dumps \
         the span tree as JSONL (one span per line; see docs/OBSERVABILITY.md)\n\
         --storage mem|disk selects the bucket backend (search/metrics/audit-leakage); \
         disk needs --data-dir DIR and accepts --fsync always|never|N (group commit), \
         and reopening the same --data-dir recovers the stored records\n\
         serve runs one rank of a multi-process TCP cluster (registry file: one \
         host:port per line, rank = line number); bench-traffic --transport tcp and \
         bench-net spawn such ranks themselves on free loopback ports (see README)\n\
         --cluster scrapes every rank of a multi-process cluster over the host \
         control channel: metrics merges the per-rank snapshots into one aggregate \
         (counters/gauges/histograms sum), trace stitches every rank's spans into \
         one cross-process tree; --registry FILE scrapes a live cluster, otherwise \
         a loopback cluster is spawned and torn down (see docs/OBSERVABILITY.md)"
    );
}

/// Dumps the global metrics snapshot when `--metrics-json` was given.
fn maybe_write_metrics(flags: &HashMap<String, String>) {
    if let Some(path) = flags.get("metrics-json") {
        let body = sdds_obs::MetricsSnapshot::capture().to_json();
        std::fs::write(path, body).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("wrote metrics to {path}");
    }
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].trim_start_matches("--").to_string();
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            flags.insert(key, args[i + 1].clone());
            i += 2;
        } else {
            flags.insert(key, String::new());
            i += 1;
        }
    }
    flags
}

fn flag_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags.get(key).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--{key} needs a number, got {v:?}");
            exit(2);
        })
    })
}

fn load_records(flags: &HashMap<String, String>) -> Vec<Record> {
    if let Some(path) = flags.get("file") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
        parse_directory(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            exit(1);
        })
    } else {
        let entries = flag_usize(flags, "entries", 1000);
        let seed = flag_usize(flags, "seed", 42) as u64;
        DirectoryGenerator::new(seed).generate(entries)
    }
}

fn config_for(flags: &HashMap<String, String>) -> SchemeConfig {
    match flags.get("config").map(String::as_str).unwrap_or("basic") {
        "basic" => SchemeConfig::basic(4, 4).expect("valid"),
        "paper" => SchemeConfig::paper_recommended(),
        "swp" => SchemeConfig::swp_chunks(4, 4).expect("valid"),
        other => {
            eprintln!("unknown --config {other:?}; use basic|paper|swp");
            exit(2);
        }
    }
}

/// The storage backend the flags select: volatile memory (the default) or
/// the durable WAL+snapshot engine rooted at `--data-dir`.
fn storage_config(flags: &HashMap<String, String>) -> StorageConfig {
    match flags.get("storage").map(String::as_str).unwrap_or("mem") {
        "mem" => StorageConfig::Mem,
        "disk" => {
            let Some(dir) = flags.get("data-dir").filter(|d| !d.is_empty()) else {
                eprintln!("--storage disk needs --data-dir DIR");
                exit(2);
            };
            let mut options = DiskOptions::default();
            if let Some(f) = flags.get("fsync") {
                options.fsync = FsyncPolicy::parse(f).unwrap_or_else(|| {
                    eprintln!("--fsync needs always|never|N, got {f:?}");
                    exit(2);
                });
            }
            StorageConfig::disk_with(dir, options)
        }
        other => {
            eprintln!("unknown --storage {other:?}; use mem|disk");
            exit(2);
        }
    }
}

fn build_store(records: &[Record], flags: &HashMap<String, String>) -> EncryptedSearchStore {
    let config = config_for(flags);
    let storage = storage_config(flags);
    let reopen = storage.is_disk();
    let mut builder = EncryptedSearchStore::builder(config)
        .passphrase(
            flags
                .get("passphrase")
                .map(String::as_str)
                .unwrap_or("sdds-cli"),
        )
        .bucket_capacity(128)
        .storage(storage);
    if config.encoding.is_some() {
        builder = builder.train(records.iter().take(1000).map(|r| r.rc.clone()));
    }
    if reopen {
        // disk mode always goes through open(): a fresh data dir starts
        // empty, an existing one recovers the previous run's records
        builder.open().unwrap_or_else(|e| {
            eprintln!("cannot open store: {e}");
            exit(1);
        })
    } else {
        builder.start()
    }
}

fn generate(flags: &HashMap<String, String>) {
    let entries = flag_usize(flags, "entries", 1000);
    let seed = flag_usize(flags, "seed", 42) as u64;
    let records = DirectoryGenerator::new(seed).generate(entries);
    let text = format_directory(&records);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            });
            eprintln!("wrote {entries} records to {path}");
        }
        None => print!("{text}"),
    }
}

fn search(flags: &HashMap<String, String>) {
    let Some(pattern) = flags.get("pattern") else {
        eprintln!("search needs --pattern");
        exit(2);
    };
    config_for(flags); // validate --config before doing any work
    let records = load_records(flags);
    eprintln!("loading {} records …", records.len());
    let store = build_store(&records, flags);
    let t0 = Instant::now();
    store
        .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
        .unwrap_or_else(|e| {
            eprintln!("load failed: {e}");
            exit(1);
        });
    eprintln!(
        "loaded into {} LH* buckets in {:?}",
        store.cluster().num_buckets(),
        t0.elapsed()
    );
    if flags.contains_key("trace-json") {
        // Trace only the query: discarding the load-phase spans and
        // enabling tracing here keeps the dump to the one span tree
        // rooted at the client operation.
        let _ = sdds_obs::trace::drain_spans();
        sdds_obs::trace::set_tracing(true);
    }
    store.cluster().network().stats().reset();
    let t0 = Instant::now();
    let result = if flags.contains_key("exact") {
        store.fetch_matching(pattern).map(|hits| {
            hits.into_iter()
                .map(|(rid, rc)| (rid, Some(rc)))
                .collect::<Vec<_>>()
        })
    } else if flags.contains_key("prefix") {
        store
            .search_starting_with(pattern)
            .map(|rids| rids.into_iter().map(|rid| (rid, None)).collect())
    } else {
        store
            .search(pattern)
            .map(|rids| rids.into_iter().map(|rid| (rid, None)).collect())
    };
    match result {
        Ok(hits) => {
            let elapsed = t0.elapsed();
            let stats = store.cluster().network().stats();
            for (rid, rc) in &hits {
                match rc {
                    Some(rc) => println!("{rid}  {rc}"),
                    None => {
                        let digits = format!("{rid:010}");
                        println!("{}-{}-{}", &digits[0..3], &digits[3..6], &digits[6..10]);
                    }
                }
            }
            eprintln!(
                "{} hit(s) in {elapsed:?} — {} messages, {} bytes on the wire",
                hits.len(),
                stats.messages(),
                stats.bytes()
            );
        }
        Err(e) => {
            eprintln!("search failed: {e}");
            exit(1);
        }
    }
    // Shutdown joins the site threads, so every span — including ones the
    // sites were still closing when the reply raced back — is recorded
    // before the flight recorder drains.
    store.shutdown();
    if let Some(path) = flags.get("trace-json") {
        write_trace(path);
    }
    maybe_write_metrics(flags);
}

/// Drains the flight recorder to `path` as JSONL, one span per line.
fn write_trace(path: &str) {
    let file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        exit(1);
    });
    let mut sink = sdds_obs::trace::TraceSink::new(std::io::BufWriter::new(file));
    match sink.drain() {
        Ok(n) => eprintln!("wrote {n} trace spans to {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        }
    }
}

/// Formats a duration in seconds with a human-scale unit.
fn fmt_secs(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.3}s")
    } else if v >= 1e-3 {
        format!("{:.1}ms", v * 1e3)
    } else {
        format!("{:.1}µs", v * 1e6)
    }
}

/// Pretty-prints one registry snapshot.
fn print_snapshot(snap: &sdds_obs::MetricsSnapshot, indent: &str) {
    if !snap.counters.is_empty() {
        println!("{indent}counters:");
        for (name, value) in &snap.counters {
            println!("{indent}  {name:<32} {value}");
        }
    }
    if !snap.gauges.is_empty() {
        println!("{indent}gauges:");
        for (name, value) in &snap.gauges {
            println!("{indent}  {name:<32} {value}");
        }
    }
    if !snap.float_gauges.is_empty() {
        println!("{indent}float gauges:");
        for (name, value) in &snap.float_gauges {
            println!("{indent}  {name:<32} {value:.6}");
        }
    }
    if !snap.histograms.is_empty() {
        println!("{indent}histograms:");
        for (name, h) in &snap.histograms {
            let q = |p: f64| h.quantile(p).map_or("-".into(), fmt_secs);
            println!(
                "{indent}  {name:<32} count={:<8} mean={:<10} p50={:<10} p95={:<10} p99={:<10} p999={}",
                h.count,
                h.mean().map_or("-".into(), fmt_secs),
                q(0.50),
                q(0.95),
                q(0.99),
                q(0.999),
            );
        }
    }
}

/// The `--queries` list (defaults to two realistic surnames).
fn parse_queries(flags: &HashMap<String, String>) -> Vec<String> {
    flags
        .get("queries")
        .map(String::as_str)
        .unwrap_or("SMITH,MARTINEZ")
        .split(',')
        .map(|q| q.trim().to_string())
        .filter(|q| !q.is_empty())
        .collect()
}

/// Runs a small load + query workload and pretty-prints the live metrics
/// snapshot, optionally with per-site breakdowns (`--sites`). With
/// `--cluster`, scrapes a multi-process TCP cluster instead.
fn metrics(flags: &HashMap<String, String>) {
    if flags.contains_key("cluster") {
        return metrics_cluster(flags);
    }
    config_for(flags); // validate --config before doing any work
    let records = load_records(flags);
    eprintln!("loading {} records …", records.len());
    let store = build_store(&records, flags);
    store
        .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
        .unwrap_or_else(|e| {
            eprintln!("load failed: {e}");
            exit(1);
        });
    let queries = parse_queries(flags);
    for q in &queries {
        if let Err(e) = store.search(q) {
            eprintln!("search {q:?} failed: {e}");
            exit(1);
        }
    }
    let sites = sdds_obs::capture_sites();
    store.shutdown();
    let snap = sdds_obs::MetricsSnapshot::capture();
    println!("== registry {:?} (aggregate) ==", snap.label);
    print_snapshot(&snap, "");
    if flags.contains_key("sites") {
        for site in &sites {
            if site.counters.values().all(|&v| v == 0)
                && site.histograms.values().all(|h| h.count == 0)
            {
                continue;
            }
            println!("\n== registry {:?} ==", site.label);
            print_snapshot(site, "");
        }
    }
    maybe_write_metrics(flags);
}

/// Scrape options shared by the cluster commands.
fn scrape_opts(flags: &HashMap<String, String>, spans: bool) -> sdds_repro::lh::ScrapeOptions {
    sdds_repro::lh::ScrapeOptions {
        metrics: !spans,
        spans,
        history: flags.contains_key("history"),
        timeout: Duration::from_millis(flag_usize(flags, "scrape-timeout-millis", 10_000) as u64),
    }
}

/// `sdds metrics --cluster`: scrapes every rank of a multi-process TCP
/// cluster over the host control channel and prints the merged aggregate
/// (plus per-rank breakdowns with `--sites`). With `--registry FILE` it
/// scrapes a live cluster and leaves it running; otherwise it spawns its
/// own loopback cluster (`--servers N`), drives the same small load +
/// query workload as local `metrics`, scrapes, and shuts down.
fn metrics_cluster(flags: &HashMap<String, String>) {
    config_for(flags); // validate --config before doing any work
    let drain_budget = flag_usize(flags, "drain-budget", sdds_repro::lh::DEFAULT_DRAIN_BUDGET);
    let inbox_capacity = parse_inbox_capacity(flags);
    let opts = scrape_opts(flags, false);
    let records = load_records(flags);
    if let Some(reg_path) = flags.get("registry").filter(|p| !p.is_empty()) {
        let registry = SiteRegistry::load(std::path::Path::new(reg_path)).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1);
        });
        let remote =
            traffic_builder(&records, flags, drain_budget, inbox_capacity).connect(registry);
        let scrape = remote.obs().scrape(&opts).unwrap_or_else(|e| {
            eprintln!("cluster scrape failed: {e}");
            exit(1);
        });
        report_cluster_scrape(&scrape, flags);
    } else {
        let servers = flag_usize(flags, "servers", 2);
        let entries = flag_usize(flags, "entries", 1000);
        let seed = flag_usize(flags, "seed", 42) as u64;
        eprintln!("spawning a {servers}-rank loopback cluster …");
        let cluster = spawn_tcp_cluster(
            &records,
            flags,
            servers,
            entries,
            seed,
            drain_budget,
            inbox_capacity,
        );
        let handle = cluster.remote.handle();
        traffic_preload(&handle, &records, inbox_capacity.is_some());
        for q in parse_queries(flags) {
            if let Err(e) = handle.search(&q) {
                eprintln!("search {q:?} failed: {e}");
                exit(1);
            }
        }
        let scrape = cluster.remote.obs().scrape(&opts).unwrap_or_else(|e| {
            eprintln!("cluster scrape failed: {e}");
            exit(1);
        });
        report_cluster_scrape(&scrape, flags);
        cluster.shutdown();
    }
}

/// Prints a cluster scrape — merged aggregate, per-rank breakdowns with
/// `--sites`, and this process's client-side registry (the hop counters
/// live here: forwarding is observed where the reply lands) — and writes
/// the `--json-out` artifact. Exits nonzero if any rank failed to report.
fn report_cluster_scrape(scrape: &sdds_repro::lh::ClusterScrape, flags: &HashMap<String, String>) {
    let missing = if scrape.missing.is_empty() {
        String::new()
    } else {
        format!(", missing {:?}", scrape.missing)
    };
    println!(
        "== cluster aggregate ({} rank(s) reporting{missing}) ==",
        scrape.ranks.len(),
    );
    print_snapshot(&scrape.aggregate, "");
    if flags.contains_key("sites") {
        for r in &scrape.ranks {
            println!("\n== rank {} ==", r.rank);
            if let Some(m) = &r.metrics {
                print_snapshot(m, "");
            }
        }
    }
    let client = sdds_obs::MetricsSnapshot::capture();
    println!("\n== client ==");
    print_snapshot(&client, "");
    if let Some(path) = flags.get("json-out") {
        let ranks_json: Vec<String> = scrape
            .ranks
            .iter()
            .map(|r| {
                format!(
                    "{{\"rank\": {}, \"metrics\": {}}}",
                    r.rank,
                    r.metrics
                        .as_ref()
                        .map_or("null".to_string(), sdds_obs::MetricsSnapshot::to_json),
                )
            })
            .collect();
        let missing: Vec<String> = scrape.missing.iter().map(usize::to_string).collect();
        let body = format!(
            "{{\n\"missing\": [{}],\n\"aggregate\": {},\n\"client\": {},\n\"ranks\": [{}]\n}}\n",
            missing.join(", "),
            scrape.aggregate.to_json(),
            client.to_json(),
            ranks_json.join(",\n"),
        );
        std::fs::write(path, body).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("wrote cluster metrics to {path}");
    }
    maybe_write_metrics(flags);
    if !scrape.missing.is_empty() {
        eprintln!("{} rank(s) failed to report", scrape.missing.len());
        exit(1);
    }
}

/// Drains this process's flight recorder and re-reads it as parsed spans
/// (the stitching input type).
fn local_parsed_spans() -> Vec<sdds_obs::trace::ParsedSpan> {
    let spans = sdds_obs::trace::drain_spans();
    let mut text = String::with_capacity(spans.len() * 160);
    for s in &spans {
        text.push_str(&s.to_json_line());
        text.push('\n');
    }
    sdds_obs::trace::parse_jsonl(&text).0
}

/// Prints each stitched trace tree with a connectivity summary line.
/// Returns false if any tree is disconnected (multiple roots or orphans).
fn render_trees(trees: &[sdds_obs::trace::TraceTree]) -> bool {
    if trees.is_empty() {
        println!("no spans recorded");
        return true;
    }
    let mut ok = true;
    for tree in trees {
        println!(
            "trace {:016x}: {} span(s), rank(s) {:?}, {}",
            tree.trace_id,
            tree.spans.len(),
            tree.ranks(),
            if tree.is_connected() {
                "connected"
            } else {
                ok = false;
                "DISCONNECTED"
            },
        );
        print!("{}", tree.render());
    }
    ok
}

/// `sdds trace`: runs one traced search and renders its span tree. With
/// `--cluster` the search runs against a self-spawned multi-process TCP
/// cluster (serve children started with `--trace`), every rank's flight
/// recorder is scraped over the control channel, and the local and remote
/// spans are stitched into one cross-process tree.
fn trace_cmd(flags: &HashMap<String, String>) {
    config_for(flags); // validate --config before doing any work
    let records = load_records(flags);
    let pattern = flags
        .get("pattern")
        .cloned()
        .unwrap_or_else(|| traffic_patterns(&records).remove(0));
    if !flags.contains_key("cluster") {
        let store = build_store(&records, flags);
        store
            .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
            .unwrap_or_else(|e| {
                eprintln!("load failed: {e}");
                exit(1);
            });
        let _ = sdds_obs::trace::drain_spans();
        sdds_obs::trace::set_tracing(true);
        let t0 = Instant::now();
        let hits = store.search(&pattern).unwrap_or_else(|e| {
            eprintln!("search failed: {e}");
            exit(1);
        });
        eprintln!(
            "traced search {pattern:?}: {} hit(s) in {:?}",
            hits.len(),
            t0.elapsed()
        );
        store.shutdown();
        let spans = local_parsed_spans()
            .into_iter()
            .map(|span| sdds_obs::trace::RankedSpan { rank: -1, span })
            .collect();
        if !render_trees(&sdds_obs::trace::stitch(spans)) {
            exit(1);
        }
        maybe_write_metrics(flags);
        return;
    }
    // Cluster mode: the serve children must record spans too.
    let mut flags = flags.clone();
    flags.insert("trace".to_string(), String::new());
    let servers = flag_usize(&flags, "servers", 2);
    let entries = flag_usize(&flags, "entries", 1000);
    let seed = flag_usize(&flags, "seed", 42) as u64;
    let drain_budget = flag_usize(&flags, "drain-budget", sdds_repro::lh::DEFAULT_DRAIN_BUDGET);
    let inbox_capacity = parse_inbox_capacity(&flags);
    eprintln!("spawning a {servers}-rank loopback cluster …");
    let cluster = spawn_tcp_cluster(
        &records,
        &flags,
        servers,
        entries,
        seed,
        drain_budget,
        inbox_capacity,
    );
    let handle = cluster.remote.handle();
    traffic_preload(&handle, &records, inbox_capacity.is_some());
    // Trace only the query: the preload above ran untraced (client-side
    // tracing was off, so its messages carried no context for the ranks
    // to record either).
    let _ = sdds_obs::trace::drain_spans();
    sdds_obs::trace::set_tracing(true);
    let t0 = Instant::now();
    let hits = handle.search(&pattern).unwrap_or_else(|e| {
        eprintln!("search failed: {e}");
        exit(1);
    });
    sdds_obs::trace::set_tracing(false);
    eprintln!(
        "traced search {pattern:?}: {} hit(s) in {:?}",
        hits.len(),
        t0.elapsed()
    );
    // The reply can race the remote sites' span-ring writes by a beat;
    // give the loops a moment to close their spans before scraping.
    std::thread::sleep(Duration::from_millis(300));
    let scrape = cluster
        .remote
        .obs()
        .scrape(&scrape_opts(&flags, true))
        .unwrap_or_else(|e| {
            eprintln!("cluster scrape failed: {e}");
            exit(1);
        });
    if !scrape.missing.is_empty() {
        eprintln!("rank(s) {:?} failed to report", scrape.missing);
    }
    let connected = render_trees(&scrape.traces(local_parsed_spans()));
    cluster.shutdown();
    maybe_write_metrics(&flags);
    if !connected || !scrape.missing.is_empty() {
        exit(1);
    }
}

/// Loads a corpus, snapshots what every bucket actually stores, and audits
/// the stored index elements for deviations from uniformity — the paper's
/// empirical security claim, measured at the adversary's vantage point.
fn audit_leakage(flags: &HashMap<String, String>) {
    config_for(flags); // validate --config before doing any work
    let records = load_records(flags);
    let top_m = flag_usize(flags, "top", 8);
    eprintln!("loading {} records …", records.len());
    let store = build_store(&records, flags);
    store
        .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
        .unwrap_or_else(|e| {
            eprintln!("load failed: {e}");
            exit(1);
        });
    let snapshot = store.cluster().snapshot().unwrap_or_else(|e| {
        eprintln!("bucket snapshot failed: {e}");
        exit(1);
    });
    let mut auditor = LeakageAuditor::new(store.pipeline().config().element_bytes());
    let mut skipped_store_copies = 0u64;
    for bucket in &snapshot.buckets {
        for (lh, body) in &bucket.records {
            // Tag 0 is the strongly encrypted record-store copy; the
            // uniformity claim is about the searchable index records.
            let (_, tag) = store.pipeline().parse_key(*lh);
            if tag == 0 {
                skipped_store_copies += 1;
                continue;
            }
            auditor.observe(bucket.addr, body);
        }
    }
    store.shutdown();
    let report = auditor.report(top_m);
    sdds_obs::float_gauge("leak.chi_square").set(report.overall.chi_square);
    sdds_obs::float_gauge("leak.chi_square_per_df").set(report.overall.chi_square_per_df);
    sdds_obs::float_gauge("leak.top_ratio").set(report.overall.top_ratio);
    println!(
        "audited {} stored index elements ({}-byte alphabet of {} values, {} record-store copies excluded)",
        report.overall.elements, report.element_bytes, report.alphabet, skipped_store_copies,
    );
    println!(
        "{:>7}  {:>10}  {:>9}  {:>10}  {:>8}  {:>11}",
        "bucket", "elements", "distinct", "chi2/df", "p-value", "top-m ratio"
    );
    for b in &report.buckets {
        println!(
            "{:>7}  {:>10}  {:>9}  {:>10.4}  {:>8.4}  {:>11.6}",
            b.bucket,
            b.summary.elements,
            b.summary.distinct,
            b.summary.chi_square_per_df,
            b.summary.p_value,
            b.summary.top_ratio,
        );
    }
    println!(
        "{:>7}  {:>10}  {:>9}  {:>10.4}  {:>8.4}  {:>11.6}",
        "overall",
        report.overall.elements,
        report.overall.distinct,
        report.overall.chi_square_per_df,
        report.overall.p_value,
        report.overall.top_ratio,
    );
    println!(
        "overall χ² = {:.2} — χ²/df ≈ 1 and an unremarkable p-value mean the stored \
         elements look uniform; see docs/OBSERVABILITY.md for interpretation",
        report.overall.chi_square,
    );
    if let Some(path) = flags.get("json-out") {
        let body = serde_json::to_string(&report).unwrap_or_else(|e| {
            eprintln!("cannot serialize report: {e}");
            exit(1);
        });
        std::fs::write(path, body).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("wrote leakage report to {path}");
    }
    maybe_write_metrics(flags);
}

/// FNV-1a over a byte slice, continuing from `h`.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Digest of everything the transform would store for `records` when run
/// on `threads` workers: the strongly encrypted copies plus every index
/// record in order. Identical digests across thread counts prove the
/// parallel path is byte-identical to the sequential one.
fn transform_digest(store: &EncryptedSearchStore, records: &[Record], threads: usize) -> u64 {
    let pool = sdds_repro::par::Pool::new(threads);
    let pairs: Vec<(u64, &str)> = records.iter().map(|r| (r.rid, r.rc.as_str())).collect();
    let produced = store.pipeline().index_records_batch(&pairs, &pool);
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for (rec, per_record) in records.iter().zip(&produced) {
        fnv1a(&mut h, &store.pipeline().encrypt_record(rec.rid, &rec.rc));
        for ir in per_record {
            fnv1a(&mut h, &[ir.chunking as u8, ir.site as u8]);
            fnv1a(&mut h, &ir.body);
        }
    }
    h
}

/// One timed load at a given thread count, on a fresh store.
fn bench_one(
    records: &[Record],
    flags: &HashMap<String, String>,
    threads: usize,
) -> (IngestStats, u64) {
    let store = build_store(records, flags);
    let stats = store
        .insert_many_with(
            records.iter().map(|r| (r.rid, r.rc.as_str())),
            IngestOptions::with_threads(threads),
        )
        .unwrap_or_else(|e| {
            eprintln!("load failed: {e}");
            exit(1);
        });
    let net = store.cluster().network().stats();
    println!(
        "threads={threads}: {} records in {:.3}s ({:.0} rec/s, {:.0} chunks/s, {:.0} B/s) — {} buckets, {} messages",
        stats.records,
        stats.elapsed_seconds,
        stats.records_per_sec(),
        stats.chunks_per_sec(),
        stats.bytes_per_sec(),
        store.cluster().num_buckets(),
        net.messages(),
    );
    let digest = transform_digest(&store, records, threads);
    store.shutdown();
    (stats, digest)
}

/// What one bench-search phase (linear or indexed) measured.
struct SearchPhase {
    /// Sum of `lh.scan_bucket_seconds` over the phase.
    bucket_seconds: f64,
    /// Bucket scans executed (histogram count delta).
    bucket_scans: u64,
    /// End-to-end wall time of the phase.
    wall_seconds: f64,
    /// The rids every query reported (last repetition).
    results: Vec<Vec<u64>>,
}

impl SearchPhase {
    /// Mean bucket-scan time — the honest unit of comparison: both
    /// phases share the decode-once prepared-query path, so this delta
    /// isolates posting-index probing vs the linear record sweep.
    fn mean_bucket_seconds(&self) -> f64 {
        if self.bucket_scans == 0 {
            return 0.0;
        }
        self.bucket_seconds / self.bucket_scans as f64
    }
}

/// Runs `repeat` rounds of every query against `store`, measuring the
/// server-side bucket-scan histogram delta.
fn run_search_phase(
    store: &EncryptedSearchStore,
    queries: &[String],
    repeat: usize,
) -> SearchPhase {
    let hist = sdds_obs::histogram("lh.scan_bucket_seconds");
    let (sum0, count0) = (hist.sum(), hist.count());
    let t0 = Instant::now();
    let mut results = Vec::new();
    for rep in 0..repeat.max(1) {
        results.clear();
        let _ = rep;
        for q in queries {
            match store.search(q) {
                Ok(rids) => results.push(rids),
                Err(e) => {
                    eprintln!("search {q:?} failed: {e}");
                    exit(1);
                }
            }
        }
    }
    SearchPhase {
        bucket_seconds: hist.sum() - sum0,
        bucket_scans: hist.count() - count0,
        wall_seconds: t0.elapsed().as_secs_f64(),
        results,
    }
}

/// Loads the same corpus into a linear-scan store and a posting-indexed
/// store, runs the same queries against both, and reports the bucket-scan
/// speedup plus the index counters. Results must be identical — the bench
/// doubles as an oracle check on a large file.
fn bench_search(flags: &HashMap<String, String>) {
    let records = load_records(flags);
    let capacity = flag_usize(flags, "capacity", 512);
    let repeat = flag_usize(flags, "repeat", 5);
    let queries: Vec<String> = flags
        .get("queries")
        .map(String::as_str)
        .unwrap_or("SCHWARZ,MARTINEZ,SMITH,GARCIA")
        .split(',')
        .map(|q| q.trim().to_string())
        .filter(|q| !q.is_empty())
        .collect();
    let config = config_for(flags);
    let build = |indexed: bool| {
        let mut builder = EncryptedSearchStore::builder(config)
            .passphrase("sdds-cli")
            .bucket_capacity(capacity)
            .scan_index(indexed);
        if config.encoding.is_some() {
            builder = builder.train(records.iter().take(1000).map(|r| r.rc.clone()));
        }
        let store = builder.start();
        store
            .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
            .unwrap_or_else(|e| {
                eprintln!("load failed: {e}");
                exit(1);
            });
        store
    };
    eprintln!(
        "loading {} records twice (linear + indexed, capacity {capacity}) …",
        records.len()
    );
    let linear_store = build(false);
    let indexed_store = build(true);
    let buckets = indexed_store.cluster().num_buckets();
    let probes0 = sdds_obs::counter("lh.scan_index_probes").get();
    let candidates0 = sdds_obs::counter("lh.scan_index_candidates").get();
    let fallback0 = sdds_obs::counter("lh.scan_fallback_linear").get();
    let linear = run_search_phase(&linear_store, &queries, repeat);
    let fallback_delta = sdds_obs::counter("lh.scan_fallback_linear").get() - fallback0;
    let indexed = run_search_phase(&indexed_store, &queries, repeat);
    let probes_delta = sdds_obs::counter("lh.scan_index_probes").get() - probes0;
    let candidates_delta = sdds_obs::counter("lh.scan_index_candidates").get() - candidates0;
    let identical = linear.results == indexed.results;
    let speedup = if indexed.mean_bucket_seconds() > 0.0 {
        linear.mean_bucket_seconds() / indexed.mean_bucket_seconds()
    } else {
        0.0
    };
    linear_store.shutdown();
    indexed_store.shutdown();
    println!(
        "linear:  {:.1} µs/bucket-scan over {} scans ({:.3}s wall)",
        linear.mean_bucket_seconds() * 1e6,
        linear.bucket_scans,
        linear.wall_seconds,
    );
    println!(
        "indexed: {:.1} µs/bucket-scan over {} scans ({:.3}s wall)",
        indexed.mean_bucket_seconds() * 1e6,
        indexed.bucket_scans,
        indexed.wall_seconds,
    );
    println!(
        "bucket-scan speedup: {speedup:.1}x on {buckets} buckets — identical results: {identical}"
    );
    println!(
        "index counters: {probes_delta} probes, {candidates_delta} candidates, {fallback_delta} linear fallbacks (baseline phase)"
    );
    if !identical {
        eprintln!("indexed and linear results diverged — consistency bug");
        exit(1);
    }
    let path = flags
        .get("json-out")
        .map(String::as_str)
        .filter(|p| !p.is_empty())
        .unwrap_or("BENCH_search.json");
    let queries_json: Vec<String> = queries.iter().map(|q| format!("\"{q}\"")).collect();
    let mut body = String::from("{\n");
    body.push_str(&format!(
        "  \"entries\": {},\n  \"config\": \"{}\",\n  \"bucket_capacity\": {capacity},\n  \"buckets\": {buckets},\n  \"repeat\": {repeat},\n  \"queries\": [{}],\n",
        records.len(),
        flags.get("config").map(String::as_str).unwrap_or("basic"),
        queries_json.join(", "),
    ));
    for (name, phase) in [("linear", &linear), ("indexed", &indexed)] {
        body.push_str(&format!(
            "  \"{name}\": {{\"bucket_scan_seconds_mean\": {:.9}, \"bucket_scans\": {}, \"bucket_seconds_total\": {:.6}, \"wall_seconds\": {:.6}}},\n",
            phase.mean_bucket_seconds(),
            phase.bucket_scans,
            phase.bucket_seconds,
            phase.wall_seconds,
        ));
    }
    body.push_str(&format!(
        "  \"speedup_bucket_scan\": {speedup:.2},\n  \"identical_results\": {identical},\n  \"scan_index_probes\": {probes_delta},\n  \"scan_index_candidates\": {candidates_delta},\n  \"scan_fallback_linear\": {fallback_delta}\n}}\n"
    ));
    std::fs::write(path, body).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        exit(1);
    });
    eprintln!("wrote search bench results to {path}");
    maybe_write_metrics(flags);
}

/// Measures the durable storage engine on this machine: batched-put
/// throughput across group-commit fsync policies, then crash-recovery
/// (WAL replay) time as a function of WAL size. Runs directly against
/// [`DiskEngine`] — no cluster, no network — so the numbers isolate the
/// storage layer. Writes `BENCH_durability.json`.
fn bench_durability(flags: &HashMap<String, String>) {
    use sdds_repro::storage::WriteBatch;
    let entries = flag_usize(flags, "entries", 20_000);
    let batch_size = flag_usize(flags, "batch", 16).max(1);
    let value_bytes = flag_usize(flags, "value-bytes", 64).max(1);
    let root = std::env::temp_dir().join(format!("sdds-bench-durability-{}", std::process::id()));
    let fail = |what: &str, e: &dyn std::fmt::Display| -> ! {
        eprintln!("{what}: {e}");
        let _ = std::fs::remove_dir_all(&root);
        exit(1);
    };
    // compaction off (threshold at the top of the range): the sweep should
    // measure the WAL append/fsync path, not snapshot rewrites
    let options_with = |fsync: FsyncPolicy| DiskOptions {
        fsync,
        compact_wal_bytes: u64::MAX,
    };
    let value = |key: u64| -> Vec<u8> {
        (0..value_bytes)
            .map(|i| (key as u8).wrapping_mul(31).wrapping_add(i as u8))
            .collect()
    };
    let policies: [(&str, FsyncPolicy); 5] = [
        ("always", FsyncPolicy::Always),
        ("every8", FsyncPolicy::EveryN(8)),
        ("every64", FsyncPolicy::EveryN(64)),
        ("every256", FsyncPolicy::EveryN(256)),
        ("never", FsyncPolicy::Never),
    ];
    eprintln!(
        "fsync sweep: {entries} records in batches of {batch_size} ({value_bytes}-byte values) …"
    );
    let mut sweep_rows = Vec::new();
    for (name, policy) in policies {
        let dir = root.join(format!("fsync-{name}"));
        let mut engine = match DiskEngine::open(&dir, options_with(policy)) {
            Ok(e) => e,
            Err(e) => fail("cannot open bench engine", &e),
        };
        let t0 = Instant::now();
        let mut key = 0u64;
        while key < entries as u64 {
            let mut batch = WriteBatch::new();
            for _ in 0..batch_size {
                if key >= entries as u64 {
                    break;
                }
                batch.put(key, value(key));
                key += 1;
            }
            if let Err(e) = engine.apply_batch(&batch) {
                fail("bench write failed", &e);
            }
        }
        if let Err(e) = engine.flush() {
            fail("bench flush failed", &e);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let (fsyncs, wal_bytes) = (engine.wal_fsyncs(), engine.wal_bytes());
        println!(
            "fsync={name:<9} {entries} records in {elapsed:.3}s ({:.0} rec/s) — {fsyncs} fsyncs, {wal_bytes} WAL bytes",
            entries as f64 / elapsed,
        );
        sweep_rows.push(format!(
            "    {{\"fsync\": \"{name}\", \"elapsed_seconds\": {elapsed:.6}, \"records_per_sec\": {:.1}, \"fsyncs\": {fsyncs}, \"wal_bytes\": {wal_bytes}}}",
            entries as f64 / elapsed,
        ));
    }
    // Replay: build WALs of growing size (no fsync — we only need the
    // bytes on disk, not durability, and the build phase is not timed),
    // then time a cold open, which replays every frame.
    eprintln!("replay sweep …");
    let mut replay_rows = Vec::new();
    for factor in [1usize, 2, 4] {
        let n = entries * factor;
        let dir = root.join(format!("replay-{factor}x"));
        let wal_bytes;
        {
            let mut engine = match DiskEngine::open(&dir, options_with(FsyncPolicy::Never)) {
                Ok(e) => e,
                Err(e) => fail("cannot open replay engine", &e),
            };
            let mut key = 0u64;
            while key < n as u64 {
                let mut batch = WriteBatch::new();
                for _ in 0..batch_size {
                    if key >= n as u64 {
                        break;
                    }
                    batch.put(key, value(key));
                    key += 1;
                }
                if let Err(e) = engine.apply_batch(&batch) {
                    fail("replay-prep write failed", &e);
                }
            }
            if let Err(e) = engine.flush() {
                fail("replay-prep flush failed", &e);
            }
            wal_bytes = engine.wal_bytes();
        }
        let t0 = Instant::now();
        let engine = match DiskEngine::open(&dir, options_with(FsyncPolicy::Never)) {
            Ok(e) => e,
            Err(e) => fail("replay open failed", &e),
        };
        let elapsed = t0.elapsed().as_secs_f64();
        if engine.len() != n {
            eprintln!("replay recovered {} of {n} records", engine.len());
            let _ = std::fs::remove_dir_all(&root);
            exit(1);
        }
        println!(
            "replay {n} records / {wal_bytes} WAL bytes in {elapsed:.3}s ({:.0} rec/s)",
            n as f64 / elapsed,
        );
        replay_rows.push(format!(
            "    {{\"records\": {n}, \"wal_bytes\": {wal_bytes}, \"replay_seconds\": {elapsed:.6}, \"records_per_sec\": {:.1}}}",
            n as f64 / elapsed,
        ));
    }
    let _ = std::fs::remove_dir_all(&root);
    let path = flags
        .get("json-out")
        .map(String::as_str)
        .filter(|p| !p.is_empty())
        .unwrap_or("BENCH_durability.json");
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let body = format!(
        "{{\n  \"entries\": {entries},\n  \"batch\": {batch_size},\n  \"value_bytes\": {value_bytes},\n  \"cpus\": {cpus},\n  \"fsync_sweep\": [\n{}\n  ],\n  \"replay\": [\n{}\n  ]\n}}\n",
        sweep_rows.join(",\n"),
        replay_rows.join(",\n"),
    );
    std::fs::write(path, body).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        exit(1);
    });
    eprintln!("wrote durability bench results to {path}");
}

fn bench_load(flags: &HashMap<String, String>) {
    let records = load_records(flags);
    let sweep: Vec<usize> = match flags.get("sweep") {
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim().parse().unwrap_or_else(|_| {
                    eprintln!("--sweep needs a comma-separated thread list, got {list:?}");
                    exit(2);
                })
            })
            .collect(),
        None => vec![flag_usize(flags, "threads", 1)],
    };
    let mut runs = Vec::with_capacity(sweep.len());
    for &threads in &sweep {
        runs.push((threads, bench_one(&records, flags, threads)));
    }
    let identical = runs.windows(2).all(|w| w[0].1 .1 == w[1].1 .1);
    if runs.len() > 1 {
        println!("identical output across thread counts: {identical}");
    }
    if flags.contains_key("sweep") || flags.contains_key("json-out") {
        let path = flags
            .get("json-out")
            .map(String::as_str)
            .filter(|p| !p.is_empty())
            .unwrap_or("BENCH_ingest.json");
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut body = String::from("{\n");
        body.push_str(&format!(
            "  \"entries\": {},\n  \"config\": \"{}\",\n  \"cpus\": {cpus},\n  \"identical_across_threads\": {identical},\n  \"runs\": [\n",
            records.len(),
            flags.get("config").map(String::as_str).unwrap_or("basic"),
        ));
        for (i, (threads, (stats, digest))) in runs.iter().enumerate() {
            body.push_str(&format!(
                "    {{\"threads\": {threads}, \"elapsed_seconds\": {:.6}, \"records\": {}, \"index_records\": {}, \"index_bytes\": {}, \"records_per_sec\": {:.1}, \"chunks_per_sec\": {:.1}, \"bytes_per_sec\": {:.1}, \"digest\": \"{digest:016x}\"}}{}\n",
                stats.elapsed_seconds,
                stats.records,
                stats.index_records,
                stats.index_bytes,
                stats.records_per_sec(),
                stats.chunks_per_sec(),
                stats.bytes_per_sec(),
                if i + 1 < runs.len() { "," } else { "" },
            ));
        }
        body.push_str("  ]\n}\n");
        std::fs::write(path, body).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("wrote sweep results to {path}");
    }
    maybe_write_metrics(flags);
}

// ---------------------------------------------------------------------
// bench-traffic: open-loop load harness over the cluster
// ---------------------------------------------------------------------

/// splitmix64 — the per-worker deterministic PRNG behind arrival
/// schedules and op selection. Seeded per (worker, load point), so runs
/// are reproducible and workers are decorrelated.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in [0, 1) from the top 53 bits.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

const TRAFFIC_CLASSES: [&str; 4] = ["read", "write", "search", "delete"];

/// Integer op-mix weights, e.g. `read:60,write:25,search:5,delete:10`.
#[derive(Clone, Copy)]
struct TrafficMix {
    weights: [u64; 4],
}

impl TrafficMix {
    fn parse(spec: &str) -> Option<TrafficMix> {
        let mut weights = [0u64; 4];
        for part in spec.split(',') {
            let (name, w) = part.trim().split_once(':')?;
            let idx = TRAFFIC_CLASSES.iter().position(|c| *c == name.trim())?;
            weights[idx] = w.trim().parse().ok()?;
        }
        (weights.iter().sum::<u64>() > 0).then_some(TrafficMix { weights })
    }

    /// Picks an op class (an index into [`TRAFFIC_CLASSES`]) by weight.
    fn pick(&self, roll: u64) -> usize {
        let total: u64 = self.weights.iter().sum();
        let mut r = roll % total;
        for (i, w) in self.weights.iter().enumerate() {
            if r < *w {
                return i;
            }
            r -= *w;
        }
        0
    }
}

/// One worker's spec for one load point. Lives behind a `Mutex` because
/// `StoreHandle` is `Send` but not `Sync` — each pool thread takes
/// exactly one spec out and owns it for the whole point.
struct TrafficSpec {
    handle: StoreHandle,
    seed: u64,
    /// Offered arrival rate for this worker (ops/sec).
    rate: f64,
    /// Length of the arrival schedule (seconds).
    duration: f64,
    mix: TrafficMix,
    /// Preloaded rid range targeted by reads.
    read_range: u64,
    /// First rid this worker's writes allocate from (disjoint per worker).
    write_base: u64,
    patterns: Vec<String>,
}

/// One worker's measurements: latencies (seconds, from *scheduled*
/// arrival) per op class, plus how far the worker fell behind schedule.
struct TrafficReport {
    lat: [Vec<f64>; 4],
    errors: u64,
    /// Worst schedule lag observed (seconds) — open-loop honesty metric.
    max_lag: f64,
    /// Seconds from the worker's epoch to its last completion.
    span: f64,
}

fn run_traffic_worker(spec: &mut TrafficSpec) -> TrafficReport {
    let mut rng = spec.seed;
    let mut lat: [Vec<f64>; 4] = Default::default();
    let mut written: Vec<u64> = Vec::new();
    let mut next_write = spec.write_base;
    let mut errors = 0u64;
    let mut max_lag = 0f64;
    let epoch = Instant::now();
    let mut arrival = 0f64;
    loop {
        // Poisson arrivals: the schedule is fixed up front by the PRNG
        // and advances regardless of completions — a slow op delays the
        // following sends but not their *scheduled* times, so queueing
        // delay lands in the latency numbers (no coordinated omission).
        arrival += -(1.0 - unit_f64(&mut rng)).ln() / spec.rate;
        if arrival > spec.duration {
            break;
        }
        let target = Duration::from_secs_f64(arrival);
        let now = epoch.elapsed();
        if now < target {
            std::thread::sleep(target - now);
        } else {
            max_lag = max_lag.max((now - target).as_secs_f64());
        }
        let mut class = spec.mix.pick(splitmix64(&mut rng));
        if class == 3 && written.is_empty() {
            class = 0; // nothing of ours to delete yet; read instead
        }
        let ok = match class {
            1 => {
                let rid = next_write;
                next_write += 1;
                let ok = spec
                    .handle
                    .insert(rid, &format!("TRAFFIC WRITE {rid} SYNTHETIC PAYLOAD"))
                    .is_ok();
                if ok {
                    written.push(rid);
                }
                ok
            }
            2 => {
                let p = &spec.patterns[(splitmix64(&mut rng) as usize) % spec.patterns.len()];
                spec.handle.search(p).is_ok()
            }
            3 => {
                // written is non-empty here (checked above); swap-remove a
                // pseudorandom element so deletes do not just mirror the
                // write order
                let i = (splitmix64(&mut rng) as usize) % written.len();
                let rid = written.swap_remove(i);
                spec.handle.delete(rid).is_ok()
            }
            _ => {
                let rid = splitmix64(&mut rng) % spec.read_range;
                spec.handle.get(rid).is_ok()
            }
        };
        let done = epoch.elapsed();
        if ok {
            lat[class].push((done.saturating_sub(target)).as_secs_f64());
        } else {
            errors += 1;
        }
    }
    TrafficReport {
        lat,
        errors,
        max_lag,
        span: epoch.elapsed().as_secs_f64(),
    }
}

/// Quantile of an ascending-sorted sample (nearest-rank); NaN when empty.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Renders a latency summary as a JSON object fragment (milliseconds).
/// Empty classes render as nulls so consumers cannot mistake "no ops of
/// this class ran" for "zero latency".
fn latency_json(sorted: &[f64]) -> String {
    let ms = |q: f64| -> String {
        let v = percentile(sorted, q);
        if v.is_nan() {
            "null".to_string()
        } else {
            format!("{:.3}", v * 1e3)
        }
    };
    format!(
        "{{\"count\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}}}",
        sorted.len(),
        ms(0.50),
        ms(0.95),
        ms(0.99),
        ms(0.999),
    )
}

/// The deterministically configured builder every process of a traffic
/// run shares: CLI-selected scheme and storage, plus the two knobs under
/// test — bounded inboxes (admission control) and the event-loop drain
/// budget. Serve ranks and TCP clients call this with identical flags so
/// key material, the codebook and the scan filter come out identical in
/// every process — none of them ever crosses the wire.
fn traffic_builder(
    records: &[Record],
    flags: &HashMap<String, String>,
    drain_budget: usize,
    inbox_capacity: Option<usize>,
) -> StoreBuilder {
    let config = config_for(flags);
    let mut builder = EncryptedSearchStore::builder(config)
        .passphrase("sdds-cli")
        .bucket_capacity(flag_usize(flags, "capacity", 128))
        .storage(storage_config(flags))
        .drain_budget(drain_budget)
        .op_timeout(Duration::from_millis(
            flag_usize(flags, "op-timeout-millis", 10_000).max(50) as u64,
        ))
        .net(NetConfig {
            inbox_capacity,
            ..NetConfig::default()
        });
    if config.encoding.is_some() {
        builder = builder.train(records.iter().take(1000).map(|r| r.rc.clone()));
    }
    builder
}

/// Builds the in-process store bench-traffic runs against.
fn build_traffic_store(
    records: &[Record],
    flags: &HashMap<String, String>,
    drain_budget: usize,
    inbox_capacity: Option<usize>,
) -> EncryptedSearchStore {
    traffic_builder(records, flags, drain_budget, inbox_capacity).start()
}

/// Parses `--inbox-capacity` (absent means unbounded inboxes).
fn parse_inbox_capacity(flags: &HashMap<String, String>) -> Option<usize> {
    flags.get("inbox-capacity").map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--inbox-capacity needs a number, got {v:?}");
            exit(2);
        })
    })
}

/// Preloads the corpus through a handle (works for both the in-process
/// store and a TCP client). Bounded inboxes get per-record inserts — the
/// single-op retry path rides out `Overloaded` — while unbounded stores
/// take the fast pipelined bulk path, which assumes replies are never
/// shed.
fn traffic_preload(handle: &StoreHandle, records: &[Record], bounded: bool) {
    let result = if bounded {
        records
            .iter()
            .try_for_each(|r| handle.insert(r.rid, &r.rc).map(|_| ()))
    } else {
        handle.insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
    };
    result.unwrap_or_else(|e| {
        eprintln!("traffic preload failed: {e}");
        exit(1);
    });
}

/// Search patterns drawn from the preloaded corpus, so searches hit real
/// postings rather than degenerating to empty probes.
fn traffic_patterns(records: &[Record]) -> Vec<String> {
    let mut patterns: Vec<String> = records
        .iter()
        .step_by((records.len() / 8).max(1))
        .filter(|r| r.rc.is_ascii() && r.rc.len() >= 5)
        .take(8)
        .map(|r| r.rc[..5].to_string())
        .collect();
    if patterns.is_empty() {
        patterns.push("SMITH".to_string());
    }
    patterns
}

/// The store a load sweep drives: the in-process channel cluster, or a
/// client connection to a multi-process TCP cluster this bench spawned.
enum TrafficTarget {
    Channel(Box<EncryptedSearchStore>),
    Tcp(TcpClusterTarget),
}

impl TrafficTarget {
    fn handle(&self) -> StoreHandle {
        match self {
            TrafficTarget::Channel(store) => store.handle(),
            TrafficTarget::Tcp(cluster) => cluster.remote.handle(),
        }
    }

    /// Admission-control rejections seen by this process so far. Over TCP
    /// these are the client-side view: remote `Overloaded` NACKs surface
    /// here on the send that consumes the debt.
    fn rejected(&self) -> u64 {
        match self {
            TrafficTarget::Channel(store) => store.cluster().network().stats().rejected(),
            TrafficTarget::Tcp(cluster) => cluster.remote.cluster().network().stats().rejected(),
        }
    }

    fn shutdown(self) {
        match self {
            TrafficTarget::Channel(store) => store.shutdown(),
            TrafficTarget::Tcp(cluster) => cluster.shutdown(),
        }
    }
}

/// A multi-process TCP cluster owned by this bench run: `sdds serve`
/// children on loopback ports plus the connected client store.
struct TcpClusterTarget {
    remote: sdds_repro::core::RemoteStore,
    children: Vec<std::process::Child>,
    registry_path: std::path::PathBuf,
}

impl TcpClusterTarget {
    /// Broadcasts a cluster-wide shutdown, then reaps the children —
    /// killing any that have not exited within a generous deadline so a
    /// wedged rank cannot hang the bench.
    fn shutdown(mut self) {
        self.remote.shutdown_cluster();
        let deadline = Instant::now() + Duration::from_secs(20);
        for child in &mut self.children {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
        let _ = std::fs::remove_file(&self.registry_path);
    }
}

/// Spawns `servers` `sdds serve` child processes on freshly reserved
/// loopback ports and connects a client store to them. The children
/// re-derive the exact store configuration from the forwarded flags, so
/// their scan filters match this process's pipeline bit for bit.
fn spawn_tcp_cluster(
    records: &[Record],
    flags: &HashMap<String, String>,
    servers: usize,
    entries: usize,
    seed: u64,
    drain_budget: usize,
    inbox_capacity: Option<usize>,
) -> TcpClusterTarget {
    if flags.get("storage").is_some_and(|s| s == "disk") {
        eprintln!(
            "tcp transport benches run with --storage mem (ranks would collide on one --data-dir)"
        );
        exit(2);
    }
    // Reserve ports by binding ephemeral listeners, then free them for
    // the children. The rebind race is theoretical on loopback at this
    // scale and a collision fails loudly (serve exits on bind error).
    let listeners: Vec<std::net::TcpListener> = (0..servers)
        .map(|_| {
            std::net::TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| {
                eprintln!("cannot reserve a loopback port: {e}");
                exit(1);
            })
        })
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| {
            l.local_addr().map(|a| a.to_string()).unwrap_or_else(|e| {
                eprintln!("cannot read reserved port: {e}");
                exit(1);
            })
        })
        .collect();
    drop(listeners);
    let registry_path = std::env::temp_dir().join(format!(
        "sdds-registry-{}-{}.txt",
        std::process::id(),
        addrs[0].rsplit(':').next().unwrap_or("0"),
    ));
    std::fs::write(&registry_path, addrs.join("\n") + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", registry_path.display());
        exit(1);
    });
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("cannot locate the sdds binary: {e}");
        exit(1);
    });
    let mut children = Vec::with_capacity(servers);
    for rank in 0..servers {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("serve")
            .arg("--site")
            .arg(rank.to_string())
            .arg("--registry")
            .arg(&registry_path)
            .arg("--entries")
            .arg(entries.to_string())
            .arg("--seed")
            .arg(seed.to_string())
            .arg("--drain-budget")
            .arg(drain_budget.to_string())
            .stdout(std::process::Stdio::null());
        if let Some(c) = inbox_capacity {
            cmd.arg("--inbox-capacity").arg(c.to_string());
        }
        // flags traffic_builder reads must reach the children verbatim
        for key in [
            "config",
            "capacity",
            "op-timeout-millis",
            "obs-tick-millis",
            "obs-history",
        ] {
            if let Some(v) = flags.get(key) {
                cmd.arg(format!("--{key}")).arg(v);
            }
        }
        // value-less flags (parse_flags stores them as empty strings)
        if flags.contains_key("trace") {
            cmd.arg("--trace");
        }
        children.push(cmd.spawn().unwrap_or_else(|e| {
            eprintln!("cannot spawn serve rank {rank}: {e}");
            exit(1);
        }));
    }
    let registry = SiteRegistry::load(&registry_path).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1);
    });
    let remote = traffic_builder(records, flags, drain_budget, inbox_capacity).connect(registry);
    TcpClusterTarget {
        remote,
        children,
        registry_path,
    }
}

/// One load point of the sweep: total offered `rate` for `duration`
/// seconds, split evenly over the workers.
struct TrafficLoad {
    rate: f64,
    duration: f64,
    seed: u64,
    mix: TrafficMix,
    /// Preloaded rid range targeted by reads.
    read_range: u64,
}

/// Runs `workers` open-loop workers against one load point; returns the
/// aggregated reports.
fn traffic_point(
    target: &TrafficTarget,
    workers: usize,
    load: &TrafficLoad,
    patterns: &[String],
) -> Vec<TrafficReport> {
    let specs: Vec<std::sync::Mutex<Option<TrafficSpec>>> = (0..workers)
        .map(|w| {
            let mut s = load.seed ^ ((w as u64 + 1) * 0x9e37_79b9);
            splitmix64(&mut s);
            std::sync::Mutex::new(Some(TrafficSpec {
                handle: target.handle(),
                seed: s,
                rate: load.rate / workers as f64,
                duration: load.duration,
                mix: load.mix,
                read_range: load.read_range,
                // rid namespaces: preload < 1e6; writer w owns a 1e5 slab
                write_base: 1_000_000 + (w as u64) * 100_000 + (load.seed % 97) * 1_000,
                patterns: patterns.to_vec(),
            }))
        })
        .collect();
    let pool = Pool::new(workers);
    pool.par_map(&specs, |slot| {
        // each pool thread owns exactly one spec for the whole point
        let mut spec = slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            // lint: allow(panic-freedom) -- one spec per slot by construction; a second take is a harness bug
            .expect("spec taken twice");
        run_traffic_worker(&mut spec)
    })
}

/// One load point's aggregate across all workers: achieved rate, error
/// count, worst schedule lag, and sorted latency samples (per class and
/// overall) ready for percentile extraction.
struct PointSummary {
    achieved: f64,
    completed: usize,
    errors: u64,
    max_lag: f64,
    class_sorted: [Vec<f64>; 4],
    all_sorted: Vec<f64>,
}

fn summarize_point(reports: &[TrafficReport], duration: f64) -> PointSummary {
    let mut class_sorted: [Vec<f64>; 4] = Default::default();
    let mut errors = 0u64;
    let mut max_lag = 0f64;
    let mut span = duration;
    for r in reports {
        for (c, l) in r.lat.iter().enumerate() {
            class_sorted[c].extend_from_slice(l);
        }
        errors += r.errors;
        max_lag = max_lag.max(r.max_lag);
        span = span.max(r.span);
    }
    let mut all_sorted: Vec<f64> = class_sorted.iter().flatten().copied().collect();
    for c in &mut class_sorted {
        c.sort_by(|a, b| a.total_cmp(b));
    }
    all_sorted.sort_by(|a, b| a.total_cmp(b));
    let completed = all_sorted.len();
    PointSummary {
        achieved: completed as f64 / span.max(1e-9),
        completed,
        errors,
        max_lag,
        class_sorted,
        all_sorted,
    }
}

/// Renders one transport's row of a load point as a JSON object fragment.
fn point_json(summary: &PointSummary, rejected_delta: u64) -> String {
    let mut row = format!(
        "{{\"achieved_rate\": {:.1}, \"completed\": {}, \"errors\": {}, \
         \"net_rejected\": {}, \"max_schedule_lag_seconds\": {:.3}, \"all\": {}",
        summary.achieved,
        summary.completed,
        summary.errors,
        rejected_delta,
        summary.max_lag,
        latency_json(&summary.all_sorted),
    );
    for (c, name) in TRAFFIC_CLASSES.iter().enumerate() {
        row.push_str(&format!(
            ", \"{name}\": {}",
            latency_json(&summary.class_sorted[c])
        ));
    }
    row.push('}');
    row
}

/// Closed-loop, read-only comparison of batch draining (the configured
/// budget) against single-message dispatch (budget 1): same stores, same
/// deterministic op streams, digests must match — batching may only
/// change *when* messages are processed, never *what* they produce.
fn traffic_compare(
    records: &[Record],
    flags: &HashMap<String, String>,
    workers: usize,
    ops_per_worker: usize,
    seed: u64,
    inbox_capacity: Option<usize>,
    budget: usize,
) -> (f64, f64, u64) {
    let store = build_traffic_store(records, flags, budget, inbox_capacity);
    traffic_preload(&store.handle(), records, inbox_capacity.is_some());
    let patterns = traffic_patterns(records);
    let read_range = records.len() as u64;
    let handles: Vec<std::sync::Mutex<Option<StoreHandle>>> = (0..workers)
        .map(|_| std::sync::Mutex::new(Some(store.handle())))
        .collect();
    let pool = Pool::new(workers);
    let start = Instant::now();
    let digests: Vec<u64> = pool.par_map(&handles, |slot| {
        let handle = slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            // lint: allow(panic-freedom) -- one handle per slot by construction; a second take is a harness bug
            .expect("handle taken twice");
        // workers share one seed on purpose: identical op streams give
        // the highest fan-in collisions on the hot buckets
        let mut rng = seed;
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for i in 0..ops_per_worker {
            if i % 8 == 7 {
                let p = &patterns[(splitmix64(&mut rng) as usize) % patterns.len()];
                match handle.search(p) {
                    Ok(rids) => {
                        for rid in rids {
                            fnv1a(&mut digest, &rid.to_le_bytes());
                        }
                    }
                    Err(_) => fnv1a(&mut digest, b"search-error"),
                }
            } else {
                let rid = splitmix64(&mut rng) % read_range;
                match handle.get(rid) {
                    Ok(Some(rc)) => fnv1a(&mut digest, rc.as_bytes()),
                    Ok(None) => fnv1a(&mut digest, b"absent"),
                    Err(_) => fnv1a(&mut digest, b"read-error"),
                }
            }
        }
        digest
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut combined = 0xcbf2_9ce4_8422_2325u64;
    for d in &digests {
        fnv1a(&mut combined, &d.to_le_bytes());
    }
    let total_ops = (workers * ops_per_worker) as f64;
    store.shutdown();
    (elapsed, total_ops / elapsed.max(1e-9), combined)
}

/// `sdds bench-traffic` — the open-loop load harness. Sweeps offered
/// load over a fixed read/write/search/delete mix, reports throughput
/// and p50/p95/p99/p999 latency per op class at each point (latency from
/// *scheduled* arrival — no coordinated omission), locates the knee, and
/// measures batch draining against single-message dispatch at high
/// fan-in. Writes `BENCH_traffic.json`.
fn bench_traffic(flags: &HashMap<String, String>) {
    let entries = flag_usize(flags, "entries", 2000);
    let workers = flag_usize(flags, "workers", 8).max(1);
    let duration = flag_usize(flags, "duration-secs", 4).max(1) as f64;
    let seed = flag_usize(flags, "seed", 42) as u64;
    let drain_budget = flag_usize(flags, "drain-budget", sdds_repro::lh::DEFAULT_DRAIN_BUDGET);
    let inbox_capacity = parse_inbox_capacity(flags);
    let transport = flags
        .get("transport")
        .map(String::as_str)
        .unwrap_or("channel");
    if !matches!(transport, "channel" | "tcp") {
        eprintln!("unknown --transport {transport:?}; use channel|tcp");
        exit(2);
    }
    let servers = flag_usize(flags, "servers", 3).max(1);
    let rates: Vec<f64> = flags
        .get("rates")
        .map(String::as_str)
        .unwrap_or("250,500,1000,2000,4000")
        .split(',')
        .map(|t| {
            t.trim().parse().unwrap_or_else(|_| {
                eprintln!("--rates needs a comma-separated ops/sec list");
                exit(2);
            })
        })
        .collect();
    let mix_spec = flags
        .get("mix")
        .map(String::as_str)
        .unwrap_or("read:60,write:25,search:5,delete:10");
    let Some(mix) = TrafficMix::parse(mix_spec) else {
        eprintln!("--mix needs read:W,write:W,search:W,delete:W with a nonzero total");
        exit(2);
    };
    let records = DirectoryGenerator::new(seed).generate(entries);
    let patterns = traffic_patterns(&records);

    eprintln!(
        "preloading {entries} records over {transport} (drain budget {drain_budget}, inbox {}) …",
        inbox_capacity.map_or("unbounded".to_string(), |c| c.to_string()),
    );
    let target = if transport == "tcp" {
        TrafficTarget::Tcp(spawn_tcp_cluster(
            &records,
            flags,
            servers,
            entries,
            seed,
            drain_budget,
            inbox_capacity,
        ))
    } else {
        TrafficTarget::Channel(Box::new(build_traffic_store(
            &records,
            flags,
            drain_budget,
            inbox_capacity,
        )))
    };
    traffic_preload(&target.handle(), &records, inbox_capacity.is_some());

    struct PointRow {
        offered: f64,
        rejected_delta: u64,
        summary: PointSummary,
    }
    let mut points: Vec<PointRow> = Vec::with_capacity(rates.len());
    for (ri, &rate) in rates.iter().enumerate() {
        eprintln!("load point {rate} ops/s × {duration}s × {workers} workers …");
        let rejected_before = target.rejected();
        let reports = traffic_point(
            &target,
            workers,
            &TrafficLoad {
                rate,
                duration,
                seed: seed ^ ((ri as u64 + 1) << 32),
                mix,
                read_range: entries as u64,
            },
            &patterns,
        );
        points.push(PointRow {
            offered: rate,
            rejected_delta: target.rejected() - rejected_before,
            summary: summarize_point(&reports, duration),
        });
    }
    target.shutdown();

    // the knee: the highest offered load the file still absorbs — achieved
    // throughput within 10% of offered. Above it the open-loop schedule
    // outruns the service rate and latency is dominated by queueing.
    let knee = points
        .iter()
        .filter(|p| p.summary.achieved >= 0.9 * p.offered)
        .map(|p| p.offered)
        .fold(f64::NAN, f64::max);

    // batch draining vs single-message dispatch, closed-loop at high
    // fan-in; identical read-only op streams must produce identical
    // digests (batching changes scheduling, never results). Repeats are
    // interleaved A/B/A/B so machine-wide drift hits both budgets alike,
    // and the median is reported — single samples on a shared/1-CPU box
    // are dominated by scheduler noise.
    let compare = if flags.contains_key("skip-compare") || transport == "tcp" {
        // over TCP the batching comparison is skipped: it measures the
        // event loop's drain budget, which the channel runs already
        // cover, and closed-loop in-process stores are its fixture
        None
    } else {
        let cw = flag_usize(flags, "compare-workers", workers.max(4));
        let cops = flag_usize(flags, "compare-ops", 2000);
        let repeats = flag_usize(flags, "compare-repeats", 3).max(1);
        eprintln!(
            "batching comparison: {cw} workers × {cops} ops, \
             budget {drain_budget} vs 1, {repeats} interleaved repeats …"
        );
        let mut batched_rates = Vec::with_capacity(repeats);
        let mut single_rates = Vec::with_capacity(repeats);
        let mut digest = None;
        for _ in 0..repeats {
            for (budget, rates_out) in [(drain_budget, &mut batched_rates), (1, &mut single_rates)]
            {
                let (_, rate, d) =
                    traffic_compare(&records, flags, cw, cops, seed, inbox_capacity, budget);
                rates_out.push(rate);
                match digest {
                    None => digest = Some(d),
                    Some(expected) if expected != d => {
                        eprintln!(
                            "RESULT DIVERGENCE at budget {budget}: \
                             digest {d:016x} != {expected:016x}"
                        );
                        exit(1);
                    }
                    Some(_) => {}
                }
            }
        }
        let median = |rates: &[f64]| -> f64 {
            let mut sorted = rates.to_vec();
            sorted.sort_by(|a, b| a.total_cmp(b));
            sorted[sorted.len() / 2]
        };
        let (rate_batched, rate_single) = (median(&batched_rates), median(&single_rates));
        eprintln!(
            "batched median {rate_batched:.0} ops/s vs unbatched median {rate_single:.0} ops/s \
             (x{:.2}), identical results across all {} runs",
            rate_batched / rate_single.max(1e-9),
            repeats * 2,
        );
        digest.map(|d| {
            (
                cw,
                cops,
                batched_rates,
                rate_batched,
                single_rates,
                rate_single,
                d,
            )
        })
    };

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut body = String::from("{\n");
    body.push_str(&format!(
        "  \"entries\": {entries},\n  \"config\": \"{}\",\n  \"cpus\": {cpus},\n  \
         \"transport\": \"{transport}\",\n  \"servers\": {},\n  \
         \"workers\": {workers},\n  \"duration_secs\": {duration},\n  \
         \"drain_budget\": {drain_budget},\n  \"inbox_capacity\": {},\n  \
         \"mix\": \"{mix_spec}\",\n  \"seed\": {seed},\n  \"load_points\": [\n",
        flags.get("config").map(String::as_str).unwrap_or("basic"),
        if transport == "tcp" {
            servers.to_string()
        } else {
            "null".to_string()
        },
        inbox_capacity.map_or("null".to_string(), |c| c.to_string()),
    ));
    for (i, p) in points.iter().enumerate() {
        // splice offered_rate into the shared per-transport row fragment
        let row = point_json(&p.summary, p.rejected_delta);
        body.push_str(&format!(
            "    {{\"offered_rate\": {:.1}, {}{}\n",
            p.offered,
            &row[1..],
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n");
    if knee.is_nan() {
        body.push_str("  \"knee_offered_rate\": null,\n");
    } else {
        body.push_str(&format!("  \"knee_offered_rate\": {knee:.1},\n"));
    }
    match compare {
        Some((cw, cops, runs_b, r_b, runs_s, r_s, digest)) => {
            let list = |rates: &[f64]| {
                rates
                    .iter()
                    .map(|r| format!("{r:.1}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            body.push_str(&format!(
                "  \"batching_comparison\": {{\"workers\": {cw}, \"ops_per_worker\": {cops}, \
                 \"batched\": {{\"budget\": {drain_budget}, \"ops_per_sec_runs\": [{}], \"ops_per_sec_median\": {r_b:.1}}}, \
                 \"unbatched\": {{\"budget\": 1, \"ops_per_sec_runs\": [{}], \"ops_per_sec_median\": {r_s:.1}}}, \
                 \"median_speedup\": {:.3}, \"identical_results\": true, \"digest\": \"{digest:016x}\"}}\n",
                list(&runs_b),
                list(&runs_s),
                r_b / r_s.max(1e-9),
            ))
        }
        None => body.push_str("  \"batching_comparison\": null\n"),
    }
    body.push_str("}\n");
    let path = flags
        .get("json-out")
        .map(String::as_str)
        .filter(|p| !p.is_empty())
        .unwrap_or("BENCH_traffic.json");
    std::fs::write(path, &body).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        exit(1);
    });
    eprintln!("wrote traffic bench results to {path}");
    maybe_write_metrics(flags);
}

/// `sdds serve` — one rank of a multi-process TCP cluster. The process
/// hosts the coordinator (rank 0 only) plus every bucket the registry's
/// modular partition assigns to it, and blocks until a client broadcasts
/// a cluster-wide shutdown. All ranks and all clients must be launched
/// with the same --entries/--seed/--config/--capacity flags: key
/// material, the codebook and the scan filter are derived
/// deterministically from them and never travel over the wire.
fn serve_cmd(flags: &HashMap<String, String>) {
    let Some(reg_path) = flags.get("registry").filter(|p| !p.is_empty()) else {
        eprintln!("serve needs --registry FILE (one host:port per line, rank = line number)");
        exit(2);
    };
    let rank = flag_usize(flags, "site", 0);
    let registry = SiteRegistry::load(std::path::Path::new(reg_path)).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1);
    });
    let entries = flag_usize(flags, "entries", 2000);
    let seed = flag_usize(flags, "seed", 42) as u64;
    let drain_budget = flag_usize(flags, "drain-budget", sdds_repro::lh::DEFAULT_DRAIN_BUDGET);
    let inbox_capacity = parse_inbox_capacity(flags);
    if flags.contains_key("trace") {
        // Without the gate the rank's flight recorder stays inert and a
        // cluster span scrape would come back empty for this rank.
        sdds_obs::trace::set_tracing(true);
    }
    let obs = sdds_repro::lh::ObsOptions {
        tick: Duration::from_millis(flag_usize(flags, "obs-tick-millis", 500).max(1) as u64),
        history: flag_usize(flags, "obs-history", 64),
        trace_flush: flags
            .get("trace-out")
            .filter(|p| !p.is_empty())
            .map(std::path::PathBuf::from),
    };
    let records = DirectoryGenerator::new(seed).generate(entries);
    let (_pipeline, config) = traffic_builder(&records, flags, drain_budget, inbox_capacity)
        .obs_options(obs)
        .serve_parts();
    eprintln!(
        "rank {rank}/{}: serving on {} …",
        registry.num_servers(),
        registry.addr(rank).unwrap_or("<out of range>"),
    );
    let handle = sdds_repro::lh::serve(registry, rank, config).unwrap_or_else(|e| {
        eprintln!("serve failed: {e}");
        exit(1);
    });
    handle.wait();
    eprintln!("rank {rank}: shut down");
}

/// The framing codec measured in isolation: ns/frame to encode and to
/// decode a typical traced envelope — the wire cost bench-net's TCP rows
/// pay per message and its channel rows do not.
struct CodecBench {
    frames: usize,
    frame_bytes: usize,
    encode_ns: f64,
    decode_ns: f64,
}

fn codec_bench() -> CodecBench {
    use sdds_repro::net::frame::{encode_envelope, Frame, FrameDecoder};
    use sdds_repro::net::{Envelope, SiteId};
    // a payload the size of a typical JSON-serialized index-record insert
    let payload: Vec<u8> = (0..220u32).map(|i| b' ' + (i % 90) as u8).collect();
    let env = Envelope {
        from: SiteId(sdds_repro::net::DYN_BASE + 0x1001),
        to: SiteId(7),
        payload: bytes::Bytes::from(payload),
        ctx: Some(sdds_obs::trace::TraceContext {
            trace_id: 0x1234_5678_9abc_def0,
            parent_span_id: 42,
        }),
    };
    let mut buf = Vec::new();
    encode_envelope(&env, &mut buf);
    let frame_bytes = buf.len();
    let frames = 200_000usize;

    let t0 = Instant::now();
    let mut out = Vec::with_capacity(frame_bytes);
    for _ in 0..frames {
        out.clear();
        encode_envelope(&env, &mut out);
    }
    let encode_ns = t0.elapsed().as_nanos() as f64 / frames as f64;

    // decode a 64-frame batch repeatedly — the contiguous-buffer shape a
    // reader thread sees after one coalesced write lands
    let mut wire = Vec::with_capacity(frame_bytes * 64);
    for _ in 0..64 {
        encode_envelope(&env, &mut wire);
    }
    let mut decoder = FrameDecoder::new();
    let mut decoded = 0usize;
    let t0 = Instant::now();
    'outer: while decoded < frames {
        decoder.extend(&wire);
        loop {
            match decoder.next_frame() {
                Ok(Some(Frame::Envelope(_))) => decoded += 1,
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    eprintln!("codec bench: self-generated frame failed to decode: {e}");
                    break 'outer;
                }
            }
        }
    }
    let decode_ns = t0.elapsed().as_nanos() as f64 / decoded.max(1) as f64;
    CodecBench {
        frames,
        frame_bytes,
        encode_ns,
        decode_ns,
    }
}

/// Digest over every pattern's hit set plus a deterministic sample of
/// record fetches. Two transports serving the same preloaded file must
/// produce equal digests — byte-identical results or the bench fails.
fn search_digest(handle: &StoreHandle, patterns: &[String], read_range: u64) -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for p in patterns {
        match handle.search(p) {
            Ok(rids) => {
                for rid in rids {
                    fnv1a(&mut digest, &rid.to_le_bytes());
                }
            }
            Err(_) => fnv1a(&mut digest, b"search-error"),
        }
    }
    for rid in (0..read_range).step_by(((read_range / 64).max(1)) as usize) {
        match handle.get(rid) {
            Ok(Some(rc)) => fnv1a(&mut digest, rc.as_bytes()),
            Ok(None) => fnv1a(&mut digest, b"absent"),
            Err(_) => fnv1a(&mut digest, b"read-error"),
        }
    }
    digest
}

/// `sdds bench-net` — transport head-to-head. Runs the same preloaded
/// file and the same open-loop read/search sweep over the in-process
/// channel fabric and over a loopback TCP cluster of real `sdds serve`
/// processes, checks the two serve byte-identical results, measures the
/// framing codec in isolation, and writes `BENCH_net.json`.
fn bench_net(flags: &HashMap<String, String>) {
    let entries = flag_usize(flags, "entries", 1200);
    let workers = flag_usize(flags, "workers", 4).max(1);
    let duration = flag_usize(flags, "duration-secs", 3).max(1) as f64;
    let seed = flag_usize(flags, "seed", 42) as u64;
    let servers = flag_usize(flags, "servers", 3).max(1);
    let drain_budget = flag_usize(flags, "drain-budget", sdds_repro::lh::DEFAULT_DRAIN_BUDGET);
    let inbox_capacity = parse_inbox_capacity(flags);
    let rates: Vec<f64> = flags
        .get("rates")
        .map(String::as_str)
        .unwrap_or("250,500,1000")
        .split(',')
        .map(|t| {
            t.trim().parse().unwrap_or_else(|_| {
                eprintln!("--rates needs a comma-separated ops/sec list");
                exit(2);
            })
        })
        .collect();
    // content-preserving mix: reads and searches only, so both transports
    // keep serving the identical preloaded file at every load point
    let mix = TrafficMix {
        weights: [70, 0, 30, 0],
    };
    let records = DirectoryGenerator::new(seed).generate(entries);
    let patterns = traffic_patterns(&records);

    eprintln!("codec microbench …");
    let codec = codec_bench();
    eprintln!(
        "frame = {} bytes: encode {:.0} ns, decode {:.0} ns",
        codec.frame_bytes, codec.encode_ns, codec.decode_ns,
    );

    eprintln!("preloading {entries} records on both transports …");
    let channel = TrafficTarget::Channel(Box::new(build_traffic_store(
        &records,
        flags,
        drain_budget,
        inbox_capacity,
    )));
    traffic_preload(&channel.handle(), &records, inbox_capacity.is_some());
    let tcp = TrafficTarget::Tcp(spawn_tcp_cluster(
        &records,
        flags,
        servers,
        entries,
        seed,
        drain_budget,
        inbox_capacity,
    ));
    traffic_preload(&tcp.handle(), &records, inbox_capacity.is_some());

    let digest_channel = search_digest(&channel.handle(), &patterns, entries as u64);
    let digest_tcp = search_digest(&tcp.handle(), &patterns, entries as u64);
    if digest_channel != digest_tcp {
        eprintln!(
            "RESULT DIVERGENCE between transports: channel digest {digest_channel:016x} \
             != tcp digest {digest_tcp:016x}"
        );
        tcp.shutdown();
        channel.shutdown();
        exit(1);
    }
    eprintln!("transports agree: search digest {digest_channel:016x}");

    struct NetPoint {
        offered: f64,
        rows: Vec<(&'static str, u64, PointSummary)>,
    }
    let mut points: Vec<NetPoint> = Vec::with_capacity(rates.len());
    for (ri, &rate) in rates.iter().enumerate() {
        let mut rows = Vec::with_capacity(2);
        for (name, target) in [("channel", &channel), ("tcp", &tcp)] {
            eprintln!("{name}: {rate} ops/s × {duration}s × {workers} workers …");
            let rejected_before = target.rejected();
            let reports = traffic_point(
                target,
                workers,
                &TrafficLoad {
                    rate,
                    duration,
                    seed: seed ^ ((ri as u64 + 1) << 32),
                    mix,
                    read_range: entries as u64,
                },
                &patterns,
            );
            rows.push((
                name,
                target.rejected() - rejected_before,
                summarize_point(&reports, duration),
            ));
        }
        points.push(NetPoint {
            offered: rate,
            rows,
        });
    }
    tcp.shutdown();
    channel.shutdown();

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut body = String::from("{\n");
    body.push_str(&format!(
        "  \"entries\": {entries},\n  \"config\": \"{}\",\n  \"cpus\": {cpus},\n  \
         \"servers\": {servers},\n  \"workers\": {workers},\n  \
         \"duration_secs\": {duration},\n  \"drain_budget\": {drain_budget},\n  \
         \"inbox_capacity\": {},\n  \"mix\": \"read:70,search:30\",\n  \"seed\": {seed},\n",
        flags.get("config").map(String::as_str).unwrap_or("basic"),
        inbox_capacity.map_or("null".to_string(), |c| c.to_string()),
    ));
    body.push_str(&format!(
        "  \"codec\": {{\"frame_bytes\": {}, \"frames\": {}, \
         \"encode_ns_per_frame\": {:.1}, \"decode_ns_per_frame\": {:.1}, \
         \"encode_mb_per_sec\": {:.1}, \"decode_mb_per_sec\": {:.1}}},\n",
        codec.frame_bytes,
        codec.frames,
        codec.encode_ns,
        codec.decode_ns,
        codec.frame_bytes as f64 * 1e3 / codec.encode_ns.max(1e-9),
        codec.frame_bytes as f64 * 1e3 / codec.decode_ns.max(1e-9),
    ));
    body.push_str(&format!(
        "  \"identical_results\": true,\n  \"search_digest\": \"{digest_channel:016x}\",\n  \
         \"load_points\": [\n",
    ));
    for (i, p) in points.iter().enumerate() {
        body.push_str(&format!("    {{\"offered_rate\": {:.1}", p.offered));
        for (name, rejected_delta, summary) in &p.rows {
            body.push_str(&format!(
                ", \"{name}\": {}",
                point_json(summary, *rejected_delta)
            ));
        }
        body.push_str(&format!(
            "}}{}\n",
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    let path = flags
        .get("json-out")
        .map(String::as_str)
        .filter(|p| !p.is_empty())
        .unwrap_or("BENCH_net.json");
    std::fs::write(path, &body).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        exit(1);
    });
    eprintln!("wrote transport bench results to {path}");
    maybe_write_metrics(flags);
}
