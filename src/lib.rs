//! Umbrella crate for the ICDE'06 encrypted searchable SDDS reproduction.
//!
//! Re-exports every workspace crate under one roof so that examples and
//! integration tests can `use sdds_repro::...`. See the individual crates
//! for the real documentation:
//!
//! * [`gf`] — GF(2^g) arithmetic, matrices, Reed–Solomon erasure coding.
//! * [`cipher`] — AES-128, block modes, and the arbitrary-width chunk PRP.
//! * [`net`] — the simulated multicomputer (sites, transport, accounting).
//! * [`lh`] — the LH\* / LH\*<sub>RS</sub> scalable distributed data structure.
//! * [`chunk`] — Stage 1: offset chunkings and search-string chunkings.
//! * [`encode`] — Stage 2: frequency-equalising lossy compression.
//! * [`disperse`] — Stage 3: GF-matrix dispersion of index records.
//! * [`stats`] — χ², n-grams, entropy and randomness tests.
//! * [`corpus`] — the synthetic SF-phone-directory workload.
//! * [`storage`] — pluggable bucket storage: in-memory or durable WAL+snapshots.
//! * [`core`] — the complete encrypted content-searchable store.
//! * [`baseline`] — SWP-style word scheme and naive decrypt-scan baselines.

pub use sdds_baseline as baseline;
pub use sdds_chunk as chunk;
pub use sdds_cipher as cipher;
pub use sdds_core as core;
pub use sdds_corpus as corpus;
pub use sdds_disperse as disperse;
pub use sdds_encode as encode;
pub use sdds_gf as gf;
pub use sdds_lh as lh;
pub use sdds_net as net;
pub use sdds_par as par;
pub use sdds_stats as stats;
pub use sdds_storage as storage;
