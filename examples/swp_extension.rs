//! The paper's §8 future work, running: "Song's et al. method of
//! encrypting while allowing for word searches should be adapted to our
//! system." This example contrasts the ECB-chunk index (the paper's main
//! scheme) with the SWP-chunk extension on the same data.
//!
//! ```sh
//! cargo run --release --example swp_extension
//! ```

use sdds_repro::core::{EncryptedSearchStore, SchemeConfig};
use sdds_repro::corpus::DirectoryGenerator;
use sdds_repro::stats::shannon_entropy;

fn entropy_of_bodies(store: &EncryptedSearchStore, rcs: &[String]) -> (f64, usize) {
    let mut hist = vec![0u64; 256];
    let mut total = 0usize;
    for (rid, rc) in rcs.iter().enumerate() {
        for rec in store.pipeline().index_records_for(rid as u64, rc) {
            for &b in &rec.body {
                hist[b as usize] += 1;
            }
            total += rec.body.len();
        }
    }
    (shannon_entropy(hist), total)
}

fn main() {
    let records = DirectoryGenerator::new(99).generate(500);
    let rcs: Vec<String> = records.iter().map(|r| r.rc.clone()).collect();

    let ecb = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("demo")
        .start();
    let swp = EncryptedSearchStore::builder(SchemeConfig::swp_chunks(4, 4).unwrap())
        .passphrase("demo")
        .start();
    for r in &records {
        ecb.insert(r.rid, &r.rc).unwrap();
        swp.insert(r.rid, &r.rc).unwrap();
    }

    println!("Same 500 records, two index kinds:\n");
    println!(
        "{:<14} {:>14} {:>16} {:>14}",
        "index kind", "H (bits/byte)", "index bytes/rec", "query bytes"
    );
    for (name, store) in [("ECB chunks", &ecb), ("SWP chunks", &swp)] {
        let (h, total) = entropy_of_bodies(store, &rcs);
        let q = store.pipeline().build_query("MARTINEZ").unwrap();
        let qbytes: usize = q
            .per_tag
            .iter()
            .map(|(_, s)| s.iter().map(Vec::len).sum::<usize>())
            .sum();
        println!(
            "{:<14} {:>14.3} {:>16.1} {:>14}",
            name,
            h,
            total as f64 / records.len() as f64,
            qbytes
        );
    }

    // the at-rest difference in one picture: a repeated-chunk record
    let rc = "ABCDABCDABCD";
    let show = |store: &EncryptedSearchStore, label: &str| {
        let body = &store.pipeline().index_records_for(1, rc)[0].body;
        let hex: Vec<String> = body
            .chunks(store.pipeline().config().element_bytes())
            .take(3)
            .map(|c| c.iter().map(|b| format!("{b:02x}")).collect())
            .collect();
        println!("  {label:<12} {}", hex.join(" | "));
    };
    println!("\n\"{rc}\" (three identical chunks) as stored at a site:");
    show(&ecb, "ECB:");
    show(&swp, "SWP:");
    println!("  → ECB leaks the repetition; SWP hides it (at 4x the storage).");

    // both find the same things
    for pattern in ["MARTINEZ", "NGUYEN"] {
        let a = ecb.search(pattern).unwrap();
        let b = swp.search(pattern).unwrap();
        println!(
            "\nsearch {pattern:?}: ECB {} hits, SWP {} hits (truth {})",
            a.len(),
            b.len(),
            records.iter().filter(|r| r.rc.contains(pattern)).count()
        );
    }

    ecb.shutdown();
    swp.shutdown();
}
