//! Persistence: snapshot a live encrypted file to disk, restart the
//! multicomputer from the snapshot, and keep searching — with
//! LH\*<sub>RS</sub> parity rebuilt on the way back up.
//!
//! ```sh
//! cargo run --release --example snapshot_persistence
//! ```

use sdds_repro::core::{EncryptedIndexFilter, EncryptedSearchStore, SchemeConfig};
use sdds_repro::corpus::DirectoryGenerator;
use sdds_repro::lh::{ClusterConfig, FileSnapshot, LhCluster, ParityConfig};
use std::sync::Arc;

fn main() {
    let records = DirectoryGenerator::new(5).generate(400);
    let config = SchemeConfig::basic(4, 2).expect("valid");

    // ---- first life: build, search, snapshot ----
    let store = EncryptedSearchStore::builder(config)
        .passphrase("durable")
        .bucket_capacity(64)
        .start();
    store
        .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
        .expect("load");
    let hits_before = store.search("MARTINEZ").expect("search");
    println!(
        "first life: {} records in {} buckets, MARTINEZ -> {} hits",
        records.len(),
        store.cluster().num_buckets(),
        hits_before.len()
    );
    let snapshot = store.cluster().snapshot().expect("snapshot");
    let path = std::env::temp_dir().join("sdds_demo_snapshot.json");
    std::fs::write(&path, serde_json::to_vec(&snapshot).expect("serialize")).expect("write");
    println!(
        "snapshot: {} records / {} buckets -> {} ({} KiB)",
        snapshot.record_count(),
        snapshot.buckets.len(),
        path.display(),
        std::fs::metadata(&path).unwrap().len() / 1024
    );
    store.shutdown();
    println!("multicomputer stopped.\n");

    // ---- second life: restore from disk, now with parity ----
    let loaded: FileSnapshot =
        serde_json::from_slice(&std::fs::read(&path).expect("read")).expect("parse");
    let cluster = LhCluster::restore(
        ClusterConfig {
            bucket_capacity: 64,
            parity: Some(ParityConfig {
                group_size: 2,
                parity_count: 1,
                slot_size: 256,
            }),
            filter: Arc::new(EncryptedIndexFilter::default()),
            ..ClusterConfig::default()
        },
        &loaded,
    )
    .expect("restore");
    println!(
        "second life: restored {} buckets, LH*RS parity enabled",
        cluster.num_buckets()
    );

    // queries come from a store facade with the same passphrase (keys are
    // derived, not stored — the snapshot holds only ciphertext)
    let probe = EncryptedSearchStore::builder(config)
        .passphrase("durable")
        .start();
    let query = probe.pipeline().build_query("MARTINEZ").expect("query");
    let client = cluster.client();
    std::thread::sleep(std::time::Duration::from_millis(300)); // parity drain
    let matches = client.scan(&query.encode(), true).expect("scan");
    let mut rids: Vec<u64> = matches
        .iter()
        .map(|m| probe.pipeline().parse_key(m.key).0)
        .collect();
    rids.sort_unstable();
    rids.dedup();
    println!("MARTINEZ after restore -> {} candidate records", rids.len());
    for rid in &hits_before {
        assert!(rids.contains(rid), "restored index lost rid {rid}");
    }

    // prove the parity is live: crash and recover a bucket
    cluster.kill_bucket(1);
    cluster.recover_bucket(1).expect("recovery");
    println!("bucket 1 crashed and recovered from parity; index still answers:");
    let matches = client.scan(&query.encode(), true).expect("scan");
    println!("  MARTINEZ -> {} index matches", matches.len());

    probe.shutdown();
    cluster.shutdown();
    let _ = std::fs::remove_file(&path);
}
