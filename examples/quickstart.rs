//! Quickstart: store encrypted records, search them by content, fetch and
//! decrypt — in under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sdds_repro::core::{EncryptedSearchStore, SchemeConfig};

fn main() {
    // Stage-1-only scheme: chunks of 4 symbols, all 4 chunkings, no
    // compression, no dispersion. Searchable for patterns of >= 4 symbols.
    let config = SchemeConfig::basic(4, 4).expect("valid parameters");
    println!("scheme: {config:?}\n");

    // The store spawns a real (simulated) multicomputer: an LH* coordinator
    // plus bucket sites, each on its own thread.
    let store = EncryptedSearchStore::builder(config)
        .passphrase("correct horse battery staple")
        .start();

    // Insert phone-directory style records: RID = number, RC = name.
    let entries = [
        (4154090271u64, "ADRIAN CORTEZ"),
        (4154090817, "AFDAHL E"),
        (4154090019, "AKIMOTO YOSHIMI"),
        (4154090723, "ALGHAZALY EBREHIM"),
        (4154090247, "ARBELAEZ LIBIA MARIA"),
        (4154090910, "ARMENANTE MARK A"),
        (4154091234, "SCHWARZ THOMAS"),
        (4154095678, "LITWIN WITOLD"),
    ];
    for (rid, name) in entries {
        store.insert(rid, name).expect("insert");
    }
    println!("inserted {} records", entries.len());

    // Content search runs in parallel at all storage sites — on ciphertext.
    for pattern in ["THOMAS", "MARIA", "AKIMOTO"] {
        let rids = store.search(pattern).expect("search");
        println!("search {pattern:?} -> {rids:?}");
    }

    // Key lookup + decryption of the strongly encrypted record copy.
    let rc = store.get(4154091234).expect("get").expect("present");
    println!("get 4154091234 -> {rc:?}");

    // fetch_matching post-filters the scheme's designed false positives.
    let matches = store.fetch_matching("WITOLD").expect("fetch");
    println!("fetch_matching \"WITOLD\" -> {matches:?}");

    // What did all of that cost on the (simulated) network?
    let stats = store.cluster().network().stats();
    println!(
        "\nnetwork: {} messages, {} bytes, ~{:?} simulated time",
        stats.messages(),
        stats.bytes(),
        store.cluster().network().simulated_time()
    );
    store.shutdown();
}
