//! The SDDS substrate at work: watch an LH\* file scale out bucket by
//! bucket, watch a stale client converge through IAMs, then crash a
//! bucket and recover it from LH\*<sub>RS</sub> parity.
//!
//! ```sh
//! cargo run --release --example cluster_scaling
//! ```

use sdds_repro::lh::{ClusterConfig, LhCluster, ParityConfig};

fn main() {
    let cluster = LhCluster::start(ClusterConfig {
        bucket_capacity: 32,
        parity: Some(ParityConfig {
            group_size: 4,
            parity_count: 1,
            slot_size: 64,
        }),
        ..ClusterConfig::default()
    });
    let writer = cluster.client();

    println!("{:>8} {:>8} {:>10}", "records", "buckets", "msgs");
    let mut next_report = 100;
    for key in 0..5_000u64 {
        writer
            .insert(key, format!("record number {key}").into_bytes())
            .unwrap();
        if key + 1 == next_report {
            println!(
                "{:>8} {:>8} {:>10}",
                key + 1,
                cluster.num_buckets(),
                cluster.network().stats().messages()
            );
            next_report *= 2;
        }
    }
    println!(
        "final: {} records in {} buckets",
        5_000,
        cluster.num_buckets()
    );

    // A fresh client starts with the primordial one-bucket image and
    // converges through Image Adjustment Messages.
    let reader = cluster.client();
    println!("\nfresh client image: {:?}", reader.image());
    for key in (0..5_000u64).step_by(97) {
        reader.lookup(key).unwrap();
    }
    println!(
        "after 52 lookups:  {:?} ({} IAMs, {} total forwarding hops)",
        reader.image(),
        reader.iam_count(),
        reader.hop_count()
    );

    // LH*RS: crash a bucket, recover it from its group's parity.
    println!("\ncrashing bucket 2 …");
    cluster.kill_bucket(2);
    cluster.recover_bucket(2).expect("recovery");
    let mut verified = 0;
    for key in 0..5_000u64 {
        let v = reader
            .lookup(key)
            .unwrap()
            .expect("record survived the crash");
        assert_eq!(v, format!("record number {key}").into_bytes());
        verified += 1;
    }
    println!("recovered; all {verified} records verified intact");

    cluster.shutdown();
}
