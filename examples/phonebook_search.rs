//! The paper's motivating workload: an SF-style phone directory stored
//! under the conclusion's recommended configuration (6-symbol chunks, two
//! chunkings, Stage-2 compression, dispersion over three sites), with
//! false-positive accounting against ground truth.
//!
//! ```sh
//! cargo run --release --example phonebook_search
//! ```

use sdds_repro::core::{EncryptedSearchStore, SchemeConfig};
use sdds_repro::corpus::DirectoryGenerator;

fn main() {
    let n = 2_000;
    let records = DirectoryGenerator::new(42).generate(n);
    println!("generated {n} directory records, e.g.:");
    for r in records.iter().take(3) {
        println!("  {} {}", r.phone_display(), r.rc);
    }

    let config = SchemeConfig::paper_recommended();
    println!("\nconfiguration: {config:?}");
    println!(
        "index records per record: {} ({} chunkings x {} dispersion sites)",
        config.index_records_per_record(),
        config.chunking.num_chunkings(),
        config.k()
    );

    let store = EncryptedSearchStore::builder(config)
        .passphrase("icde-2006")
        .bucket_capacity(128)
        // Stage 2 needs a representative sample to equalise frequencies on
        .train(records.iter().take(500).map(|r| r.rc.clone()))
        .start();

    let t0 = std::time::Instant::now();
    for r in &records {
        store.insert(r.rid, &r.rc).expect("insert");
    }
    println!(
        "\nloaded {n} records into {} LH* buckets in {:?}",
        store.cluster().num_buckets(),
        t0.elapsed()
    );

    println!(
        "\n{:<12} {:>6} {:>9} {:>7} {:>9}",
        "query", "true", "reported", "FPs", "missed"
    );
    // the recommended scheme needs patterns of at least s + t - 1 = 8
    // symbols (chunk size 6, offset step 3)
    for pattern in [
        "MARTINEZ",
        "ANDERSON",
        "WILLIAMS",
        "GONZALEZ",
        "RODRIGUEZ",
        "THOMPSON",
    ] {
        let truth: Vec<u64> = records
            .iter()
            .filter(|r| r.rc.contains(pattern))
            .map(|r| r.rid)
            .collect();
        let stats = store.cluster().network().stats();
        stats.reset();
        let hits = store.search(pattern).expect("search");
        let fps = hits.iter().filter(|rid| !truth.contains(rid)).count();
        let missed = truth.iter().filter(|rid| !hits.contains(rid)).count();
        println!(
            "{:<12} {:>6} {:>9} {:>7} {:>9}   ({} msgs, {} bytes)",
            pattern,
            truth.len(),
            hits.len(),
            fps,
            missed,
            stats.messages(),
            stats.bytes()
        );
        assert_eq!(missed, 0, "the scheme guarantees completeness");
    }

    println!("\nclient-side post-filtering (fetch_matching) gives exact answers:");
    let exact = store.fetch_matching("MARTINEZ").expect("fetch");
    println!("  MARTINEZ -> {} exact records", exact.len());

    store.shutdown();
}
