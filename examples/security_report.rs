//! Security evaluation in the paper's style (§6): how close do the index
//! records get to random bits as Stages 2 and 3 are added?
//!
//! Prints χ² of what an attacker at an index site sees, Shannon entropy
//! estimates, and the NIST-style randomness battery on the stored bodies.
//!
//! ```sh
//! cargo run --release --example security_report
//! ```

use sdds_repro::cipher::{KeyMaterial, MasterKey};
use sdds_repro::core::{EncodingConfig, IndexPipeline, SchemeConfig};
use sdds_repro::corpus::DirectoryGenerator;
use sdds_repro::stats::{chi2::Chi2Report, randomness::RandomnessReport, shannon_entropy};

fn pipeline(encoding: bool, dispersion: Option<usize>, rcs: &[String]) -> IndexPipeline {
    let mut cfg = SchemeConfig::basic(4, 2).expect("valid");
    if encoding {
        cfg.encoding = Some(EncodingConfig::whole_chunk(4096));
    }
    cfg.dispersion = dispersion;
    let cfg = cfg.validated().expect("valid");
    let book = cfg
        .encoding
        .map(|_| IndexPipeline::train_codebook(&cfg, rcs.iter().map(|s| s.as_str())));
    IndexPipeline::new(cfg, KeyMaterial::new(MasterKey::new([7; 16])), book).expect("pipeline")
}

/// What one index site stores for site (chunking 0, dispersion site 0),
/// decoded into its element alphabet: per-record element streams, the
/// element width in bits, and the elements packed into a bit stream for
/// the NIST battery.
fn site_view(p: &IndexPipeline, rcs: &[String]) -> (Vec<Vec<u64>>, u32, Vec<u8>) {
    let cfg = p.config();
    let element_bits = (cfg.chunk_bits() / cfg.k()) as u32;
    let element_bytes = cfg.element_bytes();
    let mut streams = Vec::new();
    let mut bits: Vec<bool> = Vec::new();
    for rc in rcs {
        let recs = p.index_records(rc);
        let body = &recs[0].body;
        let elements: Vec<u64> = body
            .chunks(element_bytes)
            .map(|e| {
                let mut v = 0u64;
                for (i, &b) in e.iter().enumerate() {
                    v |= (b as u64) << (8 * i); // little-endian
                }
                v
            })
            .collect();
        for &e in &elements {
            for bit in (0..element_bits).rev() {
                bits.push((e >> bit) & 1 == 1);
            }
        }
        streams.push(elements);
    }
    // pack bits MSB-first into bytes
    let mut packed = vec![0u8; bits.len() / 8];
    for (i, byte) in packed.iter_mut().enumerate() {
        for j in 0..8 {
            *byte = (*byte << 1) | u8::from(bits[i * 8 + j]);
        }
    }
    (streams, element_bits, packed)
}

fn main() {
    let rcs: Vec<String> = DirectoryGenerator::new(7)
        .generate(3_000)
        .into_iter()
        .map(|r| r.rc)
        .collect();

    println!("What does a single index-storage site learn? (3,000 records)\n");
    println!(
        "{:<28} {:>14} {:>14} {:>10} {:>8}",
        "variant", "chi2 single", "chi2 double", "H (bits)", "NIST"
    );

    let raw_chi2 = Chi2Report::from_records(
        rcs.iter()
            .map(|r| r.bytes().map(u16::from).collect::<Vec<u16>>())
            .collect::<Vec<_>>()
            .iter()
            .map(|v| v.as_slice()),
        256,
    );
    println!(
        "{:<28} {:>14.0} {:>14.0} {:>10} {:>8}",
        "plaintext (for reference)", raw_chi2.single, raw_chi2.double, "-", "-"
    );

    for (name, encoding, dispersion) in [
        ("stage 1 (ECB only)", false, None),
        ("stages 1+2 (compressed)", true, None),
        ("stages 1+3 (dispersed k=4)", false, Some(4)),
        ("stages 1+2+3 (full, k=4)", true, Some(4)),
    ] {
        let p = pipeline(encoding, dispersion, &rcs);
        let (wide_streams, mut element_bits, packed) = site_view(&p, &rcs);
        let streams: Vec<Vec<u16>> = if element_bits > 14 {
            // wide (byte-aligned) elements: analyse at byte granularity so
            // the histogram stays tractable
            assert_eq!(element_bits % 8, 0, "wide elements must be byte-aligned");
            let nbytes = (element_bits / 8) as usize;
            element_bits = 8;
            wide_streams
                .iter()
                .map(|s| {
                    s.iter()
                        .flat_map(|&e| e.to_le_bytes().into_iter().take(nbytes))
                        .map(u16::from)
                        .collect()
                })
                .collect()
        } else {
            wide_streams
                .iter()
                .map(|s| s.iter().map(|&e| e as u16).collect())
                .collect()
        };
        let alphabet = 1usize << element_bits;
        let report = Chi2Report::from_records(streams.iter().map(|v| v.as_slice()), alphabet);
        let mut hist = vec![0u64; alphabet];
        for s in &streams {
            for &e in s {
                hist[e as usize] += 1;
            }
        }
        // normalise entropy to bits per 8 bits of storage for comparability
        let entropy = shannon_entropy(hist) * 8.0 / element_bits as f64;
        let rand = RandomnessReport::run(&packed);
        println!(
            "{:<28} {:>14.0} {:>14.0} {:>10.3} {:>5}/{}",
            name,
            report.single,
            report.double,
            entropy,
            rand.passed(0.01),
            rand.tests.len()
        );
    }

    println!("\nNIST battery detail for the full scheme:");
    let p = pipeline(true, Some(4), &rcs);
    let (_, _, packed) = site_view(&p, &rcs);
    for t in RandomnessReport::run(&packed).tests {
        println!(
            "  {:<16} statistic {:>12.4}  p = {:.4}  {}",
            t.name,
            t.statistic,
            t.p_value,
            if t.passes(0.01) { "pass" } else { "FAIL" }
        );
    }

    println!(
        "\nReading: higher χ² / lower entropy = more structure leaked to the \
         site. Stage 2 flattens single-chunk frequencies; Stage 3 leaves \
         each site a fraction of each chunk; the paper's conclusion — \
         compression plus dispersion approaches, but does not reach, \
         randomness — shows in the residual doublet χ².",
    );
}
