//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input` (accepting
//! `&str`, `String`, or [`BenchmarkId`]), `Bencher::iter`, `Throughput`,
//! `sample_size`, and the `criterion_group!` / `criterion_main!` macros.
//! Measurement is a simple warm-up plus timed sampling loop reporting the
//! mean wall-clock time per iteration — adequate for relative comparisons,
//! with none of real criterion's statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared throughput of a benchmark, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter, shown as
/// `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A new id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion for the polymorphic first argument of `bench_function`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, repeating it for the sampling budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples (also caps warm-up work).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        self.run(&id.id, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (reporting happens per-benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        // Warm-up: find an iteration count that takes a measurable slice
        // of time, capped so slow benches stay fast.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let budget = Duration::from_millis(200);
        let iters = (budget.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, self.sample_size as u128 * 10) as u64;
        let mut best = per_iter;
        let samples = 3usize;
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let mean = b.elapsed / iters as u32;
            if mean < best {
                best = mean;
            }
            total += b.elapsed;
            total_iters += iters;
        }
        let mean = if total_iters > 0 {
            total / total_iters as u32
        } else {
            best
        };
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(n) => format!(
                " ({:.1} MiB/s)",
                n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
            ),
            Throughput::Elements(n) => {
                format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
        });
        println!(
            "bench {:<50} mean {:>12?}  best {:>12?}{}",
            full,
            mean,
            best,
            rate.unwrap_or_default()
        );
    }
}

/// Re-export for code importing `criterion::black_box`.
pub use std::hint::black_box;

/// Collects benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(64));
        g.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
