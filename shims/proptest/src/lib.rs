//! Minimal offline stand-in for the `proptest` crate.
//!
//! Provides the `proptest!` macro, `prop_assert*` / `prop_assume!`, the
//! [`Strategy`] trait with uniform integer/float range strategies,
//! `any::<T>()` for primitives and byte arrays, `collection::vec`, and a
//! small regex-subset string strategy (`"[class]{m,n}"` patterns). Cases
//! are generated deterministically per test name and case index; there is
//! no shrinking — a failing case reports its inputs instead.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Deterministic per-case RNG (xoshiro256**, seeded from the test name and
/// case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case `case` of the test `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // SplitMix64 expansion into the xoshiro state.
        let mut s = [0u64; 4];
        for word in &mut s {
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)` without modulo bias.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return x % bound;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    /// The generated input type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = self.end as u64 - self.start as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = end as u64 - start as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(width + 1) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategy
// ---------------------------------------------------------------------------

/// `&str` patterns act as strategies for a small regex subset: a sequence
/// of atoms (`[class]` or a literal char), each optionally quantified with
/// `{m}` or `{m,n}`. This covers the workspace's `"[A-Z &.']{0,60}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported string strategy {self:?}: {e}"));
        let mut out = String::new();
        for (chars, min, max) in &atoms {
            let count = if min == max {
                *min
            } else {
                *min + rng.below((*max - *min + 1) as u64) as usize
            };
            for _ in 0..count {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
        }
        out
    }
}

type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Result<Vec<Atom>, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .ok_or("unterminated character class")?
                + i;
            let class = &chars[i + 1..close];
            i = close + 1;
            expand_class(class)?
        } else if chars[i] == '\\' {
            let c = *chars.get(i + 1).ok_or("trailing backslash")?;
            i += 2;
            vec![c]
        } else {
            let c = chars[i];
            if "{}()|*+?.^$".contains(c) {
                return Err(format!("unsupported metacharacter {c:?}"));
            }
            i += 1;
            vec![c]
        };
        // optional {m} or {m,n}
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or("unterminated quantifier")?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().map_err(|_| "bad quantifier")?,
                    n.trim().parse().map_err(|_| "bad quantifier")?,
                ),
                None => {
                    let m = body.trim().parse().map_err(|_| "bad quantifier")?;
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        if alphabet.is_empty() {
            return Err("empty character class".into());
        }
        atoms.push((alphabet, min, max));
    }
    Ok(atoms)
}

fn expand_class(class: &[char]) -> Result<Vec<char>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo > hi {
                return Err(format!("bad range {lo}-{hi}"));
            }
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(class[i]);
            i += 1;
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies (only `vec` is provided).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy drawing lengths from `size` (half-open, like
    /// proptest's range-based size bounds).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let width = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(width) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __total: u32 = __cfg.cases;
            let __max_iters: u32 = __total.saturating_mul(16).max(16);
            let mut __successes: u32 = 0;
            let mut __iters: u32 = 0;
            while __successes < __total && __iters < __max_iters {
                let __case = __iters;
                __iters += 1;
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let mut __inputs = ::std::string::String::new();
                $crate::__proptest_bind!(__rng, __inputs; $($params)*);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = {
                    let __run = ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    );
                    match ::std::panic::catch_unwind(__run) {
                        ::std::result::Result::Ok(r) => r,
                        ::std::result::Result::Err(__payload) => {
                            eprintln!(
                                "proptest {} case #{} panicked with inputs: {}",
                                stringify!($name), __case, __inputs
                            );
                            ::std::panic::resume_unwind(__payload);
                        }
                    }
                };
                match __outcome {
                    ::std::result::Result::Ok(()) => __successes += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} case #{} failed: {}\n  inputs: {}",
                            stringify!($name), __case, __msg, __inputs
                        );
                    }
                }
            }
            assert!(
                __successes >= __total,
                "proptest {}: too many rejected cases ({} of {} succeeded)",
                stringify!($name), __successes, __total
            );
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $dbg:ident; ) => {};
    ($rng:ident, $dbg:ident; mut $arg:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $arg = $crate::Strategy::generate(&($strat), &mut $rng);
        $dbg.push_str(&::std::format!("{} = {:?}; ", stringify!($arg), $arg));
    };
    ($rng:ident, $dbg:ident; mut $arg:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $arg = $crate::Strategy::generate(&($strat), &mut $rng);
        $dbg.push_str(&::std::format!("{} = {:?}; ", stringify!($arg), $arg));
        $crate::__proptest_bind!($rng, $dbg; $($rest)*);
    };
    ($rng:ident, $dbg:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
        $dbg.push_str(&::std::format!("{} = {:?}; ", stringify!($arg), $arg));
    };
    ($rng:ident, $dbg:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
        $dbg.push_str(&::std::format!("{} = {:?}; ", stringify!($arg), $arg));
        $crate::__proptest_bind!($rng, $dbg; $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l, __r, ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l, __r, ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use proptest::prelude::*;

    #[test]
    fn ranges_are_uniformish_and_deterministic() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        let strat = 0u32..10;
        let xs: Vec<u32> = (0..32).map(|_| strat.generate(&mut a)).collect();
        let ys: Vec<u32> = (0..32).map(|_| strat.generate(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|&x| x < 10));
    }

    #[test]
    fn string_strategy_respects_class_and_bounds() {
        let mut rng = TestRng::for_case("s", 1);
        for _ in 0..100 {
            let s = "[A-Z &.']{0,60}".generate(&mut rng);
            assert!(s.len() <= 60);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_uppercase() || " &.'".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_binds_and_asserts(x in 0u64..100, mut v in collection::vec(any::<u8>(), 0..8)) {
            v.push(0);
            prop_assert!(x < 100);
            prop_assert_eq!(v[v.len() - 1], 0);
            prop_assume!(x != 99);
            prop_assert_ne!(x, 99);
        }
    }
}
