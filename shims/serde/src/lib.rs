//! Minimal offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor machinery, serialization goes through an
//! explicit JSON-like [`Value`] tree: [`Serialize`] renders a value into a
//! `Value` and [`Deserialize`] rebuilds one from it. The companion
//! `serde_derive` shim generates impls with the same data layout real serde
//! uses for JSON (named structs → objects, newtype structs transparent,
//! enums externally tagged), and the `serde_json` shim prints/parses the
//! `Value` tree, so derived types round-trip through the same JSON text
//! they would with the real crates.

use std::collections::HashMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Object entries preserve insertion order so serialized output is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }

    pub fn missing_field(name: &str) -> DeError {
        DeError(format!("missing field `{name}`"))
    }

    pub fn unknown_variant(name: &str) -> DeError {
        DeError(format!("unknown variant `{name}`"))
    }

    pub fn invalid_type(expected: &str, got: &Value) -> DeError {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        };
        DeError(format!("invalid type: expected {expected}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::invalid_type(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::invalid_type(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::invalid_type("bool", v)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(DeError::invalid_type("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::invalid_type("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::invalid_type("char", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::invalid_type("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = [$($idx),+].len();
                match v {
                    Value::Arr(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::invalid_type("tuple array", v)),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + fmt::Display, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output (HashMap iteration order is not).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Obj(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::invalid_type("null", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_and_vecs_roundtrip() {
        let x: Option<Vec<u8>> = Some(vec![1, 2]);
        let v = x.to_value();
        assert_eq!(Option::<Vec<u8>>::from_value(&v).unwrap(), x);
        let n: Option<Vec<u8>> = None;
        assert_eq!(n.to_value(), Value::Null);
        assert_eq!(Option::<Vec<u8>>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn tuples_and_arrays_roundtrip() {
        let t = (7u64, vec![1u8, 2]);
        let v = t.to_value();
        assert_eq!(<(u64, Vec<u8>)>::from_value(&v).unwrap(), t);
        let a = [1u8; 16];
        assert_eq!(<[u8; 16]>::from_value(&a.to_value()).unwrap(), a);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::U64(999)).is_err());
        assert!(<[u8; 4]>::from_value(&vec![1u8, 2].to_value()).is_err());
    }
}
