//! Minimal offline stand-in for the `rand_chacha` crate.
//!
//! [`ChaCha8Rng`] runs a genuine 8-round ChaCha block function keyed by the
//! 32-byte seed, buffering one 64-byte block at a time. Streams are
//! deterministic per seed but not bit-compatible with the upstream crate
//! (the workspace only relies on determinism and uniformity).

use rand::{RngCore, SeedableRng};

/// Number of ChaCha double-rounds (ChaCha8 = 8 rounds = 4 double-rounds).
const DOUBLE_ROUNDS: usize = 4;

/// A deterministic RNG backed by the ChaCha8 stream cipher.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u8; 64],
    /// Next unread offset in `buffer`; 64 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DOUBLE_ROUNDS {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, word) in working.iter_mut().enumerate() {
            *word = word.wrapping_add(self.state[i]);
        }
        for (chunk, word) in self.buffer.chunks_mut(4).zip(working.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        // 64-bit block counter in words 12-13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    fn take_bytes(&mut self, n: usize) -> u64 {
        debug_assert!(n <= 8);
        let mut out = [0u8; 8];
        let mut filled = 0;
        while filled < n {
            if self.index == 64 {
                self.refill();
            }
            let avail = (64 - self.index).min(n - filled);
            out[filled..filled + avail]
                .copy_from_slice(&self.buffer[self.index..self.index + avail]);
            self.index += avail;
            filled += avail;
        }
        u64::from_le_bytes(out)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.take_bytes(4) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.take_bytes(8)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut filled = 0;
        while filled < dest.len() {
            if self.index == 64 {
                self.refill();
            }
            let avail = (64 - self.index).min(dest.len() - filled);
            dest[filled..filled + avail]
                .copy_from_slice(&self.buffer[self.index..self.index + avail]);
            self.index += avail;
            filled += avail;
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            let mut word = [0u8; 4];
            word.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            state[4 + i] = u32::from_le_bytes(word);
        }
        // counter (12-13) and nonce (14-15) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0u8; 64],
            index: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let lo = b.next_u64().to_le_bytes();
        let hi = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &lo);
        assert_eq!(&buf[8..], &hi);
    }

    #[test]
    fn output_bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let mut ones = 0u32;
        for _ in 0..1024 {
            ones += rng.next_u64().count_ones();
        }
        let total = 1024 * 64;
        let ratio = ones as f64 / total as f64;
        assert!((0.48..0.52).contains(&ratio), "bit ratio {ratio}");
    }
}
