//! Minimal offline stand-in for the `serde_json` crate.
//!
//! Prints and parses JSON text against the shim `serde`'s [`Value`] tree.
//! Covers the workspace surface: `to_writer`, `to_vec`, `to_string`,
//! `to_string_pretty`, `from_slice`, `from_str`. Number fidelity matches
//! what the workspace needs: non-negative integers stay `u64`, negative
//! integers stay `i64`, anything fractional or out of range becomes `f64`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::Write;

/// Error for both serialization and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    // The writer below only ever emits valid UTF-8.
    to_vec(value).and_then(|v| String::from_utf8(v).map_err(|e| Error::new(e.to_string())))
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = Vec::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    String::from_utf8(out).map_err(|e| Error::new(e.to_string()))
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as compact JSON directly into `writer` — no
/// intermediate `String`/`Vec` allocation, so callers can stream into a
/// reusable (pooled) buffer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    write_value(&mut writer, &value.to_value(), None, 0)
}

fn io_err(e: std::io::Error) -> Error {
    Error::new(e.to_string())
}

fn write_value<W: Write>(
    out: &mut W,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<()> {
    match v {
        Value::Null => out.write_all(b"null").map_err(io_err)?,
        Value::Bool(b) => out
            .write_all(if *b { b"true" } else { b"false" })
            .map_err(io_err)?,
        Value::U64(n) => write!(out, "{n}").map_err(io_err)?,
        Value::I64(n) => write!(out, "{n}").map_err(io_err)?,
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // Always keep a decimal point / exponent so the value reads
            // back as a float, matching serde_json.
            let s = x.to_string();
            out.write_all(s.as_bytes()).map_err(io_err)?;
            if !s.contains(['.', 'e', 'E']) {
                out.write_all(b".0").map_err(io_err)?;
            }
        }
        Value::Str(s) => write_string(out, s)?,
        Value::Arr(items) => {
            out.write_all(b"[").map_err(io_err)?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_all(b",").map_err(io_err)?;
                }
                newline_indent(out, indent, depth + 1)?;
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth)?;
            }
            out.write_all(b"]").map_err(io_err)?;
        }
        Value::Obj(entries) => {
            out.write_all(b"{").map_err(io_err)?;
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.write_all(b",").map_err(io_err)?;
                }
                newline_indent(out, indent, depth + 1)?;
                write_string(out, key)?;
                out.write_all(b":").map_err(io_err)?;
                if indent.is_some() {
                    out.write_all(b" ").map_err(io_err)?;
                }
                write_value(out, val, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth)?;
            }
            out.write_all(b"}").map_err(io_err)?;
        }
    }
    Ok(())
}

fn newline_indent<W: Write>(out: &mut W, indent: Option<usize>, depth: usize) -> Result<()> {
    if let Some(width) = indent {
        out.write_all(b"\n").map_err(io_err)?;
        for _ in 0..width * depth {
            out.write_all(b" ").map_err(io_err)?;
        }
    }
    Ok(())
}

fn write_string<W: Write>(out: &mut W, s: &str) -> Result<()> {
    out.write_all(b"\"").map_err(io_err)?;
    let mut buf = [0u8; 4];
    for c in s.chars() {
        match c {
            '"' => out.write_all(b"\\\"").map_err(io_err)?,
            '\\' => out.write_all(b"\\\\").map_err(io_err)?,
            '\n' => out.write_all(b"\\n").map_err(io_err)?,
            '\r' => out.write_all(b"\\r").map_err(io_err)?,
            '\t' => out.write_all(b"\\t").map_err(io_err)?,
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).map_err(io_err)?;
            }
            c => out
                .write_all(c.encode_utf8(&mut buf).as_bytes())
                .map_err(io_err)?,
        }
    }
    out.write_all(b"\"").map_err(io_err)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value_complete(text)?;
    Ok(T::from_value(&value)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(text)
}

fn parse_value_complete(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Value::I64(-i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(u64::MAX)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, format!("[1,null,{}]", u64::MAX));
        let back: Vec<Option<u64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\u{1}é".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        let x: f64 = from_str("2.5e3").unwrap();
        assert_eq!(x, 2500.0);
    }

    #[test]
    fn negative_and_large_integers() {
        let x: i64 = from_str("-42").unwrap();
        assert_eq!(x, -42);
        let y: u64 = from_str(&u64::MAX.to_string()).unwrap();
        assert_eq!(y, u64::MAX);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("not json").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Vec<u8> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn to_writer_matches_to_string() {
        let v: Vec<Option<String>> = vec![Some("a\"b".into()), None];
        let mut out = Vec::new();
        to_writer(&mut out, &v).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), to_string(&v).unwrap());
    }
}
