//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided: unbounded and bounded MPMC
//! channels built on `Mutex<VecDeque>` + `Condvar`, with the same
//! disconnect semantics the real crate documents — `send` fails once every
//! `Receiver` is dropped, `recv` fails once every `Sender` is dropped and
//! the queue has drained, and on a bounded channel `try_send` reports
//! `Full` without blocking while `send` waits for space.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on receive"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        // Signalled when a bounded channel pops an element (space freed);
        // blocking `send` on a full bounded channel waits here.
        space: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel. Clonable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` values.
    /// `send` blocks while full; `try_send` reports [`TrySendError::Full`].
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if every receiver has been dropped.
        /// On a bounded channel, blocks until space is available.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                // Re-check under the lock so a concurrently dropped receiver
                // cannot race us into enqueueing onto a dead channel.
                if self.shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = self
                            .shared
                            .space
                            .wait(queue)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Enqueues `value` without blocking: on a bounded channel at
        /// capacity this returns [`TrySendError::Full`] immediately.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Re-check under the lock so a concurrently dropped receiver
            // cannot race us into enqueueing onto a dead channel.
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn on_pop(&self, queue: std::sync::MutexGuard<'_, VecDeque<T>>) {
            drop(queue);
            if self.shared.capacity.is_some() {
                self.shared.space.notify_one();
            }
        }

        /// Blocks until a value is available or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    self.on_pop(queue);
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    self.on_pop(queue);
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
                if timed_out.timed_out() && queue.is_empty() {
                    if self.shared.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Pops a value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = queue.pop_front() {
                self.on_pop(queue);
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Senders blocked on a full bounded channel must wake up
                // and observe the disconnect instead of waiting forever.
                // Taking the queue lock first orders this wakeup after any
                // sender's receivers-check-then-wait, so it cannot be lost.
                drop(self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()));
                self.shared.space.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_fails_after_sender_drop_and_drain() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_elapses_on_empty_channel() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_try_send_reports_full_then_recovers() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn bounded_try_send_reports_disconnected() {
            let (tx, rx) = bounded(2);
            drop(rx);
            assert_eq!(tx.try_send(9), Err(TrySendError::Disconnected(9)));
        }

        #[test]
        fn unbounded_try_send_never_full() {
            let (tx, rx) = unbounded();
            for i in 0..10_000 {
                tx.try_send(i).unwrap();
            }
            assert_eq!(rx.len(), 10_000);
        }

        #[test]
        fn bounded_send_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let handle = thread::spawn(move || tx.send(2));
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            handle.join().unwrap().unwrap();
        }

        #[test]
        fn bounded_send_unblocks_on_receiver_drop() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let handle = thread::spawn(move || tx.send(2));
            thread::sleep(Duration::from_millis(20));
            drop(rx);
            assert_eq!(handle.join().unwrap(), Err(SendError(2)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            handle.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
