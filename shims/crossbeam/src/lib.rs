//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided: an unbounded MPMC channel built on
//! `Mutex<VecDeque>` + `Condvar`, with the same disconnect semantics the real
//! crate documents — `send` fails once every `Receiver` is dropped, `recv`
//! fails once every `Sender` is dropped and the queue has drained.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on receive"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel. Clonable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Re-check under the lock so a concurrently dropped receiver
            // cannot race us into enqueueing onto a dead channel.
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
                if timed_out.timed_out() && queue.is_empty() {
                    if self.shared.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Pops a value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_fails_after_sender_drop_and_drain() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_elapses_on_empty_channel() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            handle.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
