//! Offline stand-in for `serde_derive`, written directly against
//! `proc_macro` (no `syn`/`quote`).
//!
//! Generates impls of the shim `serde` crate's `Serialize`/`Deserialize`
//! traits with the data layout real serde uses for JSON:
//!
//! * named structs → objects keyed by field name;
//! * single-field tuple structs (newtypes) → the inner value, transparent;
//! * enums → externally tagged: unit variants as strings, struct variants
//!   as `{"Variant": {fields…}}`.
//!
//! Supported attributes: `#[serde(default)]` on fields, and
//! `#[serde(from = "T")]` / `#[serde(into = "T")]` on containers. Generic
//! types are rejected — the workspace derives none.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    default: bool,
}

enum Variant {
    Unit(String),
    Struct(String, Vec<Field>),
}

enum Item {
    NamedStruct(Vec<Field>),
    /// Tuple struct with its field count.
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct ContainerAttrs {
    from: Option<String>,
    into: Option<String>,
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let mut attrs = ContainerAttrs {
        from: None,
        into: None,
    };
    collect_attrs(&tokens, &mut pos, |key, value| match (key, value) {
        ("from", Some(v)) => attrs.from = Some(v),
        ("into", Some(v)) => attrs.into = Some(v),
        _ => {}
    });
    skip_visibility(&tokens, &mut pos);

    let kind = match ident_at(&tokens, pos) {
        Some(k) if k == "struct" || k == "enum" => k,
        _ => return error("serde shim derive: expected `struct` or `enum`"),
    };
    pos += 1;
    let Some(name) = ident_at(&tokens, pos) else {
        return error("serde shim derive: expected type name");
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return error("serde shim derive: generic types are not supported");
    }

    let item = if kind == "struct" {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct(parse_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => return error("serde shim derive: unsupported struct body"),
        }
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                match parse_variants(g.stream()) {
                    Ok(vs) => Item::Enum(vs),
                    Err(e) => return error(&e),
                }
            }
            _ => return error("serde shim derive: expected enum body"),
        }
    };

    let code = match mode {
        Mode::Serialize => match &attrs.into {
            Some(repr) => gen_serialize_into(&name, repr),
            None => gen_serialize(&name, &item),
        },
        Mode::Deserialize => match &attrs.from {
            Some(repr) => gen_deserialize_from(&name, repr),
            None => gen_deserialize(&name, &item),
        },
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Token-level parsing helpers
// ---------------------------------------------------------------------------

fn ident_at(tokens: &[TokenTree], pos: usize) -> Option<String> {
    match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => Some(i.to_string()),
        _ => None,
    }
}

/// Consumes `#[...]` attributes starting at `pos`, reporting every
/// `#[serde(key)]` / `#[serde(key = "value")]` entry to `on_serde`.
fn collect_attrs(
    tokens: &[TokenTree],
    pos: &mut usize,
    mut on_serde: impl FnMut(&str, Option<String>),
) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                parse_serde_args(args.stream(), &mut on_serde);
            }
        }
        *pos += 2;
    }
}

/// Parses the inside of `serde(...)`: comma-separated `key` or
/// `key = "value"` entries.
fn parse_serde_args(stream: TokenStream, on_serde: &mut impl FnMut(&str, Option<String>)) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let Some(key) = ident_at(&tokens, i) else {
            i += 1;
            continue;
        };
        i += 1;
        let mut value = None;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            if let Some(TokenTree::Literal(lit)) = tokens.get(i + 1) {
                value = Some(lit.to_string().trim_matches('"').to_string());
            }
            i += 2;
        }
        on_serde(&key, value);
        // skip a trailing comma
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(ident_at(tokens, *pos).as_deref(), Some("pub")) {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Skips type tokens until a top-level comma (angle brackets tracked so
/// commas inside generic argument lists don't split fields).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Parses the fields of a named struct (or named enum variant) body.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let mut default = false;
        collect_attrs(&tokens, &mut pos, |key, _| {
            if key == "default" {
                default = true;
            }
        });
        skip_visibility(&tokens, &mut pos);
        let Some(name) = ident_at(&tokens, pos) else {
            break;
        };
        pos += 1;
        // ':'
        pos += 1;
        skip_type(&tokens, &mut pos);
        // ','
        pos += 1;
        fields.push(Field { name, default });
    }
    fields
}

/// Counts top-level fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        // attributes and visibility may precede the type
        collect_attrs(&tokens, &mut pos, |_, _| {});
        skip_visibility(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
        count += 1;
        pos += 1; // the comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        collect_attrs(&tokens, &mut pos, |_, _| {});
        let Some(name) = ident_at(&tokens, pos) else {
            break;
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(name, parse_fields(g.stream())));
                pos += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde shim derive: tuple variant `{name}` is not supported"
                ));
            }
            _ => variants.push(Variant::Unit(name)),
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `(String::from("name"), Serialize::to_value(expr))` object entry.
fn obj_entry(name: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from({name:?}), ::serde::Serialize::to_value({value_expr}))")
}

/// Expression deserializing field `name` out of the object `src_expr`.
fn field_from_value(src_expr: &str, field: &Field) -> String {
    let name = &field.name;
    if field.default {
        format!(
            "match {src_expr}.get_field({name:?}) {{ \
               ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
               ::std::option::Option::None => ::std::default::Default::default(), \
             }}"
        )
    } else {
        format!(
            "::serde::Deserialize::from_value({src_expr}.get_field({name:?})\
             .ok_or_else(|| ::serde::DeError::missing_field({name:?}))?)?"
        )
    }
}

fn gen_serialize(name: &str, item: &Item) -> String {
    let body = match item {
        Item::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| obj_entry(&f.name, &format!("&self.{}", f.name)))
                .collect();
            format!("::serde::Value::Obj(vec![{}])", entries.join(", "))
        }
        Item::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Item::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Item::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) => format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),"
                    ),
                    Variant::Struct(vn, fields) => {
                        let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let entries: Vec<String> =
                            fields.iter().map(|f| obj_entry(&f.name, &f.name)).collect();
                        format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Obj(vec![\
                               (::std::string::String::from({vn:?}), \
                                ::serde::Value::Obj(vec![{}]))]),",
                            bindings.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] #[allow(clippy::all)] \
         impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(name: &str, item: &Item) -> String {
    let body = match item {
        Item::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f.name, field_from_value("__v", f)))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Item::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Item::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__items.get({i})\
                         .ok_or_else(|| ::serde::DeError::custom(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match __v {{ \
                   ::serde::Value::Arr(__items) => ::std::result::Result::Ok({name}({})), \
                   _ => ::std::result::Result::Err(::serde::DeError::invalid_type(\"array\", __v)), \
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(vn) => Some(format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    _ => None,
                })
                .collect();
            let struct_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Struct(vn, fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: {}", f.name, field_from_value("__inner", f)))
                            .collect();
                        Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                    _ => None,
                })
                .collect();
            let mut arms = Vec::new();
            if !unit_arms.is_empty() {
                arms.push(format!(
                    "::serde::Value::Str(__s) => match __s.as_str() {{ {} \
                       __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other)), }},",
                    unit_arms.join(" ")
                ));
            }
            if !struct_arms.is_empty() {
                arms.push(format!(
                    "::serde::Value::Obj(__entries) if __entries.len() == 1 => {{ \
                       let (__tag, __inner) = &__entries[0]; \
                       match __tag.as_str() {{ {} \
                         __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other)), }} }},",
                    struct_arms.join(" ")
                ));
            }
            arms.push(format!(
                "_ => ::std::result::Result::Err(::serde::DeError::custom(\
                   \"invalid representation for enum {name}\")),"
            ));
            format!("match __v {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] #[allow(clippy::all)] \
         impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) \
               -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}

fn gen_serialize_into(name: &str, repr: &str) -> String {
    format!(
        "#[automatically_derived] #[allow(clippy::all)] \
         impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ \
             let __repr: {repr} = \
                 ::std::convert::Into::into(::std::clone::Clone::clone(self)); \
             ::serde::Serialize::to_value(&__repr) \
           }} \
         }}"
    )
}

fn gen_deserialize_from(name: &str, repr: &str) -> String {
    format!(
        "#[automatically_derived] #[allow(clippy::all)] \
         impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) \
               -> ::std::result::Result<Self, ::serde::DeError> {{ \
             let __repr: {repr} = ::serde::Deserialize::from_value(__v)?; \
             ::std::result::Result::Ok(::std::convert::From::from(__repr)) \
           }} \
         }}"
    )
}
