//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock, Condvar}` with the `parking_lot` call
//! shape: `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. Poisoned locks are recovered transparently (matching
//! `parking_lot`, which has no poisoning).

use std::sync::{self, Condvar as StdCondvar};
use std::time::Duration;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable usable with this crate's [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.inner.wait_timeout(guard, timeout) {
            Ok((g, to)) => (g, to.timed_out()),
            Err(e) => {
                let (g, to) = e.into_inner();
                (g, to.timed_out())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
