//! Minimal offline stand-in for the `rand` crate (0.8-style API).
//!
//! Implements only what this workspace uses: the [`RngCore`] /
//! [`SeedableRng`] traits, the [`Rng`] extension trait with `gen` and
//! `gen_range` over unsigned-integer ranges, and
//! [`distributions::WeightedIndex`]. Sampling is uniform (rejection
//! sampling, no modulo bias) and deterministic per seed, but the byte
//! streams are not bit-compatible with the upstream crate — the workspace
//! only asserts distribution-level properties, never golden streams.

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the object-safe core trait.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with a SplitMix64 sequence, like
    /// upstream `rand`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be produced directly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, usize);

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Draws a uniform value in `[0, bound)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Reject draws in the short final cycle so every residue is equally
    // likely (Lemire's threshold: (2^64 - bound) mod bound).
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        if x >= threshold {
            return x % bound;
        }
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = self.end as u64 - self.start as u64;
                self.start + uniform_below(rng, width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = end as u64 - start as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, width + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Bundled deterministic RNGs.

    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256**-based RNG (stand-in for upstream's
    /// `StdRng`; not cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod distributions {
    //! Sampling distributions (only [`WeightedIndex`] is provided).

    use super::{uniform_below, RngCore};
    use std::fmt;

    /// A distribution over values of type `T` sampled with an RNG.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum WeightedError {
        NoItem,
        InvalidWeight,
        AllWeightsZero,
    }

    impl fmt::Display for WeightedError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no weights provided"),
                WeightedError::InvalidWeight => write!(f, "a weight is invalid"),
                WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Weight types usable with [`WeightedIndex`].
    pub trait Weight: Copy + PartialOrd + std::ops::Add<Output = Self> {
        const ZERO: Self;
        /// Draws uniformly in `[ZERO, bound)`.
        fn draw_below<R: RngCore + ?Sized>(rng: &mut R, bound: Self) -> Self;
    }

    macro_rules! impl_weight_uint {
        ($($t:ty),*) => {$(
            impl Weight for $t {
                const ZERO: Self = 0;
                fn draw_below<R: RngCore + ?Sized>(rng: &mut R, bound: Self) -> Self {
                    uniform_below(rng, bound as u64) as $t
                }
            }
        )*};
    }

    impl_weight_uint!(u8, u16, u32, u64, usize);

    impl Weight for f64 {
        const ZERO: Self = 0.0;
        fn draw_below<R: RngCore + ?Sized>(rng: &mut R, bound: Self) -> Self {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            unit * bound
        }
    }

    /// Borrow-like trait restricted to weight types so that `W` can be
    /// inferred from both by-value and by-reference weight iterators
    /// (mirrors upstream's `SampleBorrow`).
    pub trait SampleBorrow<W> {
        fn borrow_weight(&self) -> W;
    }

    impl<W: Weight> SampleBorrow<W> for W {
        fn borrow_weight(&self) -> W {
            *self
        }
    }

    impl<W: Weight> SampleBorrow<W> for &W {
        fn borrow_weight(&self) -> W {
            **self
        }
    }

    /// Samples indices `0..n` proportionally to a weight table.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex<W> {
        cumulative: Vec<W>,
        total: W,
    }

    impl<W: Weight> WeightedIndex<W> {
        // The negated comparisons are deliberate: `!(w >= 0)` is true for
        // NaN where `w < 0` is not, and both cases must be rejected.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: SampleBorrow<W>,
        {
            let mut cumulative = Vec::new();
            let mut total = W::ZERO;
            for w in weights {
                let w = w.borrow_weight();
                // Rejects negative weights and NaN alike.
                if !(w >= W::ZERO) {
                    return Err(WeightedError::InvalidWeight);
                }
                total = total + w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if !(total > W::ZERO) {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl<W: Weight> Distribution<usize> for WeightedIndex<W> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            // Draw uniformly in [0, total) and find the first cumulative
            // weight strictly above it: index i is hit with probability
            // weight_i / total, and zero-weight items are never selected.
            let draw = W::draw_below(rng, self.total);
            self.cumulative
                .partition_point(|&c| c <= draw)
                .min(self.cumulative.len() - 1)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::rngs::StdRng;
        use crate::SeedableRng;

        #[test]
        fn weighted_index_respects_weights() {
            let dist = WeightedIndex::new([1u32, 0, 3]).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            let mut counts = [0u32; 3];
            for _ in 0..4000 {
                counts[dist.sample(&mut rng)] += 1;
            }
            assert_eq!(counts[1], 0);
            assert!(counts[2] > counts[0] * 2, "counts={counts:?}");
            assert!(counts[0] > 500, "counts={counts:?}");
        }

        #[test]
        fn weighted_index_rejects_bad_input() {
            assert_eq!(
                WeightedIndex::<u32>::new(std::iter::empty::<u32>()).unwrap_err(),
                WeightedError::NoItem
            );
            assert_eq!(
                WeightedIndex::new([0u32, 0]).unwrap_err(),
                WeightedError::AllWeightsZero
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let a: u8 = rng.gen_range(0..26u8);
            assert!(a < 26);
            let b = rng.gen_range(5..=9u32);
            assert!((5..=9).contains(&b));
            let c = rng.gen_range(0..17usize);
            assert!(c < 17);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for &c in &counts {
            assert!((1600..2400).contains(&c), "counts={counts:?}");
        }
    }
}
