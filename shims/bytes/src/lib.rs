//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, reference-counted byte buffer that is
//! cheap to clone. Only the API surface used by this workspace is
//! implemented (`new`, `from_static`, `copy_from_slice`, `From<Vec<u8>>`,
//! `Deref<Target = [u8]>`, equality/hash, and `len`).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
    /// An arbitrary owner viewed as its byte slice (`Bytes::from_owner`,
    /// upstream since 1.9): the owner is kept alive by the `Arc` and its
    /// `Drop` runs when the last clone goes away — the hook buffer pools
    /// use to reclaim their buffers without copying.
    Owned(Arc<dyn AsRef<[u8]> + Send + Sync>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes {
            inner: Inner::Static(&[]),
        }
    }

    /// Creates `Bytes` from a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            inner: Inner::Static(bytes),
        }
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: Inner::Shared(Arc::from(data)),
        }
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Returns the contents as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared(a) => a,
            Inner::Owned(o) => o.as_ref().as_ref(),
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Creates `Bytes` from an arbitrary owner without copying its bytes.
    ///
    /// The owner is moved behind an `Arc`; the view is whatever
    /// `owner.as_ref()` returns, and the owner's `Drop` runs once the last
    /// clone of the returned `Bytes` is dropped. This lets pooled buffers
    /// travel as `Bytes` and return to their pool on drop.
    pub fn from_owner<T>(owner: T) -> Self
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        Bytes {
            inner: Inner::Owned(Arc::new(owner)),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            inner: Inner::Shared(Arc::from(v.into_boxed_slice())),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn static_and_copied_compare_equal() {
        assert_eq!(Bytes::from_static(b"hi"), Bytes::copy_from_slice(b"hi"));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn from_owner_views_without_copy_and_drops_owner() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Owner(Vec<u8>);
        impl AsRef<[u8]> for Owner {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        impl Drop for Owner {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }

        let b = Bytes::from_owner(Owner(vec![9u8, 8, 7]));
        let c = b.clone();
        assert_eq!(&b[..], &[9, 8, 7]);
        assert_eq!(b, c);
        drop(b);
        assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        drop(c);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
}
